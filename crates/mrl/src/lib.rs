#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-mrl — the Manku–Rajagopalan–Lindsay quantile summary
//!
//! The deterministic multi-level buffer-collapse summary of Manku,
//! Rajagopalan & Lindsay (SIGMOD 1998), in the uniform-policy,
//! power-of-two-weights formulation: equal-capacity buffers fill at
//! level 0; two same-level buffers collapse (weighted merge, alternate
//! selection) into one buffer a level up, like a binary counter.
//!
//! Space is O((1/ε)·log²(εN)) — one log factor more than GK, which is
//! why the lower-bound paper's history starts here. As the paper notes,
//! MRL "relies on the advance knowledge of the stream length N": the
//! buffer capacity is sized from an `expected_n`, and the ε guarantee
//! degrades if the stream runs long.
//!
//! Collapse bias is cancelled deterministically by alternating the
//! odd/even selection offset per level (the trick from the original
//! paper), keeping the summary fully deterministic and comparison-based
//! — i.e. squarely subject to the Ω((1/ε)·log εN) lower bound.
//!
//! # Example
//!
//! ```
//! use cqs_mrl::MrlSummary;
//! use cqs_core::ComparisonSummary;
//!
//! let mut mrl = MrlSummary::new(0.01, 100_000);
//! for x in 0..100_000u64 {
//!     mrl.insert(x);
//! }
//! let med = mrl.quantile(0.5).unwrap();
//! assert!((49_000..=51_000).contains(&med));
//! ```

use cqs_core::{ComparisonSummary, MergeError, MergeableSummary, RankEstimator};

/// One full buffer: `items` are sorted and each represents `2^level`
/// stream items.
#[derive(Clone, Debug)]
struct Buffer<T> {
    level: u32,
    items: Vec<T>,
}

/// Borrowed persistent state returned by [`MrlSummary::snapshot_parts`]:
/// `(level, items)` buffers in level order, the level-0 staging run,
/// and the per-level collapse parities.
pub type SnapshotParts<'a, T> = (Vec<(u32, &'a [T])>, &'a [T], &'a [bool]);

/// The MRL summary.
#[derive(Clone, Debug)]
pub struct MrlSummary<T> {
    buffers: Vec<Buffer<T>>,
    staging: Vec<T>,
    /// Buffer capacity k.
    k: usize,
    n: u64,
    eps: f64,
    expected_n: u64,
    /// Per-level parity toggles for the alternate-offset collapse.
    parity: Vec<bool>,
}

impl<T: Ord + Clone> MrlSummary<T> {
    /// Creates a summary for guarantee ε sized for streams up to
    /// `expected_n` items.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(eps: f64, expected_n: u64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        assert!(expected_n > 0, "expected_n must be positive");
        // Each collapse at level l contributes ≤ 2^{l−1} rank error per
        // query; summing the cascade gives ≈ L·n/(2k) total with
        // L = log₂(n/k) levels, so k = (L+2)/(2ε) keeps it under εn.
        let k0 = (1.0 / (2.0 * eps)).ceil();
        let levels = ((expected_n as f64 / k0).log2()).max(1.0).ceil();
        let k = (((levels + 2.0) / (2.0 * eps)).ceil() as usize).max(4);
        MrlSummary {
            buffers: Vec::new(),
            staging: Vec::with_capacity(k),
            k,
            n: 0,
            eps,
            expected_n,
            parity: Vec::new(),
        }
    }

    /// The buffer capacity k chosen from (ε, expected N).
    pub fn buffer_capacity(&self) -> usize {
        self.k
    }

    /// The ε this summary targets (up to `expected_n` items).
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The stream length the parameters were sized for.
    pub fn expected_n(&self) -> u64 {
        self.expected_n
    }

    /// Number of full buffers currently held.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Collapses the two lowest equal-level buffers until levels are
    /// distinct (the binary-counter carry chain).
    fn carry(&mut self) {
        loop {
            self.buffers.sort_by_key(|b| b.level);
            let Some(pos) = self
                .buffers
                .windows(2)
                .position(|w| w[0].level == w[1].level)
            else {
                return;
            };
            let b = self.buffers.remove(pos + 1);
            let a = self.buffers.remove(pos);
            let merged = self.collapse_pair(a, b);
            self.buffers.push(merged);
        }
    }

    /// Weighted merge of two same-level buffers, keeping alternate
    /// elements with a per-level alternating offset.
    fn collapse_pair(&mut self, a: Buffer<T>, b: Buffer<T>) -> Buffer<T> {
        debug_assert_eq!(a.level, b.level);
        let level = a.level as usize;
        if self.parity.len() <= level {
            self.parity.resize(level + 1, false);
        }
        let offset = usize::from(self.parity[level]);
        self.parity[level] = !self.parity[level];

        // Merge two sorted runs.
        let mut merged = Vec::with_capacity(a.items.len() + b.items.len());
        let (mut ia, mut ib) = (
            a.items.into_iter().peekable(),
            b.items.into_iter().peekable(),
        );
        loop {
            let take_a = match (ia.peek(), ib.peek()) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_a { ia.next() } else { ib.next() };
            merged.extend(next);
        }
        let items: Vec<T> = merged.into_iter().skip(offset).step_by(2).collect();
        Buffer {
            level: a.level + 1,
            items,
        }
    }

    /// Sorted (item, weight) view of everything held.
    pub fn weighted_items(&self) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = Vec::new();
        for b in &self.buffers {
            let w = 1u64 << b.level;
            out.extend(b.items.iter().map(|x| (x.clone(), w)));
        }
        out.extend(self.staging.iter().map(|x| (x.clone(), 1)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Merges another MRL summary into this one (distributed
    /// aggregation). Both must have been built with the same buffer
    /// capacity (same ε and expected N); full buffers join the carry
    /// chain level-by-level, staging items re-enter at weight 1.
    ///
    /// # Panics
    ///
    /// Panics if buffer capacities differ.
    pub fn merge(&mut self, other: &MrlSummary<T>) {
        assert_eq!(
            self.k, other.k,
            "MRL merge requires identical buffer capacity (same eps / expected N)"
        );
        self.buffers.extend(other.buffers.iter().cloned());
        self.n += other.n - other.staging.len() as u64;
        self.carry();
        for x in &other.staging {
            self.insert(x.clone());
        }
    }

    /// The persistent state: full buffers as `(level, items)` in level
    /// order, the level-0 staging run, and the per-level collapse
    /// parities. Together with `(eps, expected_n, n)` from the accessors
    /// this is everything a snapshot must carry.
    pub fn snapshot_parts(&self) -> SnapshotParts<'_, T> {
        let bufs = self
            .buffers
            .iter()
            .map(|b| (b.level, b.items.as_slice()))
            .collect();
        (bufs, &self.staging, &self.parity)
    }

    /// Rebuilds a summary from snapshot parts, validating parameter
    /// ranges, buffer shape (strictly increasing levels, sorted items,
    /// per-buffer capacity), staging size, and exact weight conservation
    /// (`Σ |buffer|·2^level + |staging| = n`). Returns a diagnostic
    /// instead of constructing a broken summary.
    pub fn from_snapshot_parts(
        eps: f64,
        expected_n: u64,
        n: u64,
        buffers: Vec<(u32, Vec<T>)>,
        staging: Vec<T>,
        parity: Vec<bool>,
    ) -> Result<Self, String> {
        if !(eps > 0.0 && eps < 0.5) {
            return Err(format!("snapshot eps {eps} outside (0, 0.5)"));
        }
        if expected_n == 0 {
            return Err("snapshot expected_n must be positive".to_string());
        }
        // Re-derive k exactly as `new` does; the snapshot does not get
        // to choose a capacity inconsistent with (ε, expected N).
        let k = MrlSummary::<u64>::new(eps, expected_n).k;
        if staging.len() >= k {
            return Err(format!(
                "snapshot staging holds {} items but buffers flush at capacity {k}",
                staging.len()
            ));
        }
        let mut prev_level: Option<u32> = None;
        for (level, items) in &buffers {
            if *level >= 48 {
                return Err(format!("snapshot buffer level {level} out of range"));
            }
            if prev_level.is_some_and(|p| *level <= p) {
                return Err("snapshot buffer levels are not strictly increasing".to_string());
            }
            prev_level = Some(*level);
            if items.is_empty() || items.len() > k {
                return Err(format!(
                    "snapshot buffer at level {level} holds {} items (capacity {k})",
                    items.len()
                ));
            }
            if !items.windows(2).all(|w| match (w.first(), w.last()) {
                (Some(a), Some(b)) => a <= b,
                _ => true,
            }) {
                return Err(format!("snapshot buffer at level {level} is not sorted"));
            }
        }
        // Weight conservation works on the buffer *shape* — levels and
        // counts extracted through closures — so the accounting
        // arithmetic stays disjoint from the item values themselves
        // (Definition 2.1: items meet only Ord/Eq/Clone).
        let mut staged: u64 = 0;
        staging.iter().for_each(|_| staged += 1);
        let mut shape: Vec<(u32, u64)> = Vec::new();
        buffers
            .iter()
            .for_each(|(level, items)| shape.push((*level, items.len() as u64)));
        let mut weight: u64 = staged;
        for (level, count) in &shape {
            weight += count << level;
        }
        if weight != n {
            return Err(format!(
                "snapshot weight {weight} disagrees with stream length {n}"
            ));
        }
        Ok(MrlSummary {
            buffers: buffers
                .into_iter()
                .map(|(level, items)| Buffer { level, items })
                .collect(),
            staging,
            k,
            n,
            eps,
            expected_n,
            parity,
        })
    }

    /// Total represented weight — equals items processed exactly.
    pub fn total_weight(&self) -> u64 {
        let full: u64 = self
            .buffers
            .iter()
            .map(|b| (b.items.len() as u64) << b.level)
            .sum();
        full + self.staging.len() as u64
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for MrlSummary<T> {
    fn insert(&mut self, item: T) {
        self.staging.push(item);
        self.n += 1;
        if self.staging.len() == self.k {
            let mut items = std::mem::replace(&mut self.staging, Vec::with_capacity(self.k));
            items.sort_unstable();
            self.buffers.push(Buffer { level: 0, items });
            self.carry();
        }
    }

    fn item_array(&self) -> Vec<T> {
        let mut out: Vec<T> = self
            .buffers
            .iter()
            .flat_map(|b| b.items.iter().cloned())
            .collect();
        out.extend(self.staging.iter().cloned());
        out.sort_unstable();
        out
    }

    fn stored_count(&self) -> usize {
        self.buffers.iter().map(|b| b.items.len()).sum::<usize>() + self.staging.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        let weighted = self.weighted_items();
        // Center each weighted item on its weight span for unbiased
        // answers: item j covers ranks (cum, cum + w]; return the first
        // whose span reaches r.
        let mut cum = 0u64;
        for (x, w) in &weighted {
            cum += w;
            if cum >= r {
                return Some(x.clone());
            }
        }
        weighted.last().map(|(x, _)| x.clone())
    }

    fn name(&self) -> &'static str {
        "mrl"
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for MrlSummary<T> {
    /// The non-panicking face of [`MrlSummary::merge`]: a capacity
    /// mismatch (different ε / expected N sizing) comes back as a typed
    /// refusal instead of reaching the inherent merge's assert, and the
    /// composed ε is re-validated for range.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.k != other.k {
            return Err(MergeError::IncompatibleParams {
                what: "buffer capacity (eps / expected N sizing)",
                left: self.k.to_string(),
                right: other.k.to_string(),
            });
        }
        self.merge(other);
        if self.total_weight() != self.n {
            return Err(MergeError::InvariantViolated {
                detail: format!(
                    "MRL weight {} disagrees with stream length {}",
                    self.total_weight(),
                    self.n
                ),
            });
        }
        Ok(())
    }

    /// MRL's ε holds while the stream stays within the `expected_n` the
    /// buffers were sized for; merging same-capacity shards keeps the
    /// per-item guarantee (the carry chain is exactly the single-stream
    /// collapse cascade), so the sized ε is the honest bound.
    fn eps_bound(&self) -> Option<f64> {
        Some(self.eps)
    }
}

impl<T: Ord + Clone> RankEstimator<T> for MrlSummary<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        let mut cum = 0u64;
        for b in &self.buffers {
            let w = 1u64 << b.level;
            cum += w * b.items.partition_point(|x| x <= q) as u64;
        }
        cum += self.staging.iter().filter(|x| *x <= q).count() as u64;
        cum
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn weight_conservation_on_random_streams(xs in proptest::collection::vec(0u64..100_000, 1..3000)) {
            let mut mrl = MrlSummary::new(0.05, 3_000);
            for &x in &xs {
                mrl.insert(x);
            }
            prop_assert_eq!(mrl.total_weight(), xs.len() as u64);
            prop_assert_eq!(mrl.items_processed(), xs.len() as u64);
        }

        #[test]
        fn rank_queries_within_budget_on_random_streams(xs in proptest::collection::vec(0u32..10_000, 500..2500)) {
            let eps = 0.05;
            let mut mrl = MrlSummary::new(eps, 2_500);
            let mut sorted = xs.clone();
            for &x in &xs {
                mrl.insert(x);
            }
            sorted.sort_unstable();
            let n = xs.len() as u64;
            let budget = (eps * n as f64).floor() as u64 + 1;
            for step in 1..=8u64 {
                let r = (step * n / 8).max(1);
                let ans = mrl.query_rank(r).unwrap();
                let lo = sorted.partition_point(|&v| v < ans) as u64 + 1;
                let hi = sorted.partition_point(|&v| v <= ans) as u64;
                let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
                prop_assert!(err <= budget, "rank {r}: err {err}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        let mut s = seed | 1;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn weight_conservation() {
        let mut mrl = MrlSummary::new(0.02, 50_000);
        for x in shuffled(37_123, 1) {
            mrl.insert(x);
        }
        assert_eq!(mrl.total_weight(), 37_123);
    }

    #[test]
    fn buffer_levels_are_distinct_after_carry() {
        let mut mrl = MrlSummary::new(0.05, 20_000);
        for x in shuffled(20_000, 2) {
            mrl.insert(x);
        }
        let mut levels: Vec<u32> = mrl.buffers.iter().map(|b| b.level).collect();
        let before = levels.len();
        levels.dedup();
        assert_eq!(levels.len(), before, "duplicate levels survived carry");
    }

    #[test]
    fn quantile_error_within_eps_on_shuffled_stream() {
        let n = 60_000u64;
        let eps = 0.01;
        let mut mrl = MrlSummary::new(eps, n);
        for x in shuffled(n, 3) {
            mrl.insert(x);
        }
        let budget = (eps * n as f64) as u64;
        for r in (1..=n).step_by(997) {
            let ans = mrl.query_rank(r).unwrap();
            assert!(
                ans.abs_diff(r) <= budget,
                "rank {r}: answer {ans}, err {} > {budget}",
                ans.abs_diff(r)
            );
        }
    }

    #[test]
    fn quantile_error_within_eps_on_sorted_stream() {
        let n = 60_000u64;
        let eps = 0.01;
        let mut mrl = MrlSummary::new(eps, n);
        for x in 1..=n {
            mrl.insert(x);
        }
        let budget = (eps * n as f64) as u64;
        for r in (1..=n).step_by(1231) {
            let ans = mrl.query_rank(r).unwrap();
            assert!(ans.abs_diff(r) <= budget, "rank {r}: answer {ans}");
        }
    }

    #[test]
    fn space_shape_is_inverse_eps_log_squared() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut mrl = MrlSummary::new(eps, n);
        let mut peak = 0usize;
        for x in shuffled(n, 4) {
            mrl.insert(x);
            peak = peak.max(mrl.stored_count());
        }
        // (1/ε)·log²(εN) = 100·log²(1000) ≈ 100·99 ≈ 9 940; demand the
        // right ballpark (within small constants) and clear sublinearity.
        let shape = (1.0 / eps) * (eps * n as f64).log2().powi(2);
        assert!((peak as f64) < 2.0 * shape, "peak {peak} vs shape {shape}");
        assert!(
            peak > (shape * 0.05) as usize,
            "peak {peak} suspiciously small"
        );
    }

    #[test]
    fn rank_estimates_within_budget() {
        let n = 40_000u64;
        let eps = 0.02;
        let mut mrl = MrlSummary::new(eps, n);
        for x in shuffled(n, 5) {
            mrl.insert(x);
        }
        let budget = (eps * n as f64) as u64 + 1;
        for q in (0..=n).step_by(1999) {
            let est = mrl.estimate_rank(&q);
            assert!(est.abs_diff(q) <= budget, "rank({q}) est {est}");
        }
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut mrl = MrlSummary::new(0.05, 10_000);
            for x in shuffled(10_000, 6) {
                mrl.insert(x);
            }
            mrl.item_array()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_summary() {
        let mrl: MrlSummary<u64> = MrlSummary::new(0.1, 100);
        assert_eq!(mrl.quantile(0.5), None);
        assert_eq!(mrl.stored_count(), 0);
    }
}
