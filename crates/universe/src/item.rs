//! Opaque universe items.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::arena::{mint_id, NO_ID};

/// An element of the totally ordered universe.
///
/// Internally an item is an immutable byte-string label compared
/// lexicographically, but the label bytes are deliberately *not* part of
/// the comparison-based API surface used by summaries: a summary that is
/// generic over `T: Ord + Clone` and instantiated with `T = Item` can
/// only compare, test equality, hash, and clone — exactly the operations
/// permitted by Definition 2.1(i) of the paper.
///
/// Cloning is O(1) (the label chunk is reference-counted).
///
/// ## Memory layout
///
/// An item is a view into an arena chunk (see
/// [`LabelArena`](crate::LabelArena)): a shared `Arc<[u8]>` holding the
/// labels of a whole minted run, plus the `(off, len)` slice locating
/// this label. Two inline fields are precomputed at mint time so the
/// common comparisons never dereference the chunk at all:
///
/// * `key` — the first 8 label bytes, big-endian, zero-padded. Because
///   labels never end in `0x00` (the [`between_labels`]
///   (crate::between_labels) invariant), zero-padding cannot collide a
///   short label with a longer one that it is not genuinely ordered
///   against: if two keys differ, their order *is* the lexicographic
///   order of the labels; if they agree, the labels agree on their
///   first `min(8, len)` bytes and only the tail needs a byte-wise
///   tiebreak.
/// * `id` — a globally unique arena id. Clones share their original's
///   id, so `id` equality proves the labels are the same and yields
///   `Equal` without touching memory — the arena-layout replacement for
///   the old `Arc::ptr_eq` fast path. Inequality of ids proves nothing
///   and falls through. The [`NO_ID`] sentinel (minted only after id
///   exhaustion) is excluded from the fast path entirely.
///
/// The observable semantics are exactly the derived ones on the label
/// bytes: lexicographic byte order. The prefix `key` is not reachable
/// through the public API, and the `id` is exposed read-only
/// ([`arena_id`](Item::arena_id)) for adversary-side bookkeeping only —
/// summaries, being generic over `T: Ord + Clone`, cannot observe
/// anything beyond comparison outcomes (the `model-purity` lint
/// certifies this).
#[derive(Clone)]
pub struct Item {
    key: u64,
    id: u32,
    off: u32,
    len: u32,
    chunk: Arc<[u8]>,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        (self.id == other.id && self.id != NO_ID)
            || (self.key == other.key && self.label() == other.label())
    }
}

impl Eq for Item {}

// Manual alongside the manual `PartialEq` (id equality implies label
// equality, so the `k1 == k2 ⇒ hash(k1) == hash(k2)` contract holds);
// hashes the label bytes exactly as the old `Arc<[u8]>` layout did.
impl std::hash::Hash for Item {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.label().hash(state);
    }
}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.id == other.id && self.id != NO_ID {
            return Ordering::Equal;
        }
        if self.key != other.key {
            // Big-endian keys order exactly like the padded first 8
            // bytes, which (no-trailing-zero invariant aside, see the
            // type docs) is the labels' lexicographic order.
            return self.key.cmp(&other.key);
        }
        let a = self.label();
        let b = other.label();
        // Equal keys ⇒ the labels agree on bytes 0..m; compare tails.
        let m = a.len().min(b.len()).min(8);
        lex_cmp(&a[m..], &b[m..])
    }
}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic byte comparison that skips the shared prefix one
/// `u64` word at a time before falling back to the per-byte verdict.
/// Equivalent to `a.cmp(b)` on byte slices.
fn lex_cmp(a: &[u8], b: &[u8]) -> Ordering {
    const W: usize = 8;
    let common = a.len().min(b.len());
    let mut i = 0;
    while i + W <= common {
        // Word-wise equality probe; big-endian interpretation preserves
        // lexicographic order, so the first differing word decides.
        let wa = u64::from_be_bytes(a[i..i + W].try_into().expect("8-byte chunk"));
        let wb = u64::from_be_bytes(b[i..i + W].try_into().expect("8-byte chunk"));
        if wa != wb {
            return wa.cmp(&wb);
        }
        i += W;
    }
    while i < common {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
        i += 1;
    }
    a.len().cmp(&b.len())
}

/// The fixed-width comparison key: first 8 label bytes, big-endian,
/// zero-padded on the right.
fn prefix_key(label: &[u8]) -> u64 {
    let mut k = [0u8; 8];
    let n = label.len().min(8);
    k[..n].copy_from_slice(&label[..n]);
    u64::from_be_bytes(k)
}

impl Item {
    /// Wraps a raw label in a single-label chunk. Intended for the
    /// adversary/universe machinery; summaries should never construct
    /// items. Run minting goes through [`LabelArena`](crate::LabelArena)
    /// instead, which packs a whole run into one chunk.
    pub fn from_label(label: Vec<u8>) -> Self {
        let chunk: Arc<[u8]> = label.into();
        let end = chunk.len();
        Self::from_chunk(chunk, 0, end)
    }

    /// An item viewing `chunk[start..end]`. The chunk must already be
    /// frozen (no mutable access can exist behind an `Arc<[u8]>`).
    ///
    /// # Panics
    ///
    /// Panics if the slice bounds are out of range or exceed the `u32`
    /// offset space (a single chunk holds one minted run; runs are
    /// nowhere near 4 GiB).
    pub(crate) fn from_chunk(chunk: Arc<[u8]>, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= chunk.len(),
            "chunk slice out of range"
        );
        let off = u32::try_from(start).expect("arena chunk exceeds u32 offset space");
        let len = u32::try_from(end - start).expect("label exceeds u32 length space");
        let key = prefix_key(&chunk[start..end]);
        Item {
            key,
            id: mint_id(),
            off,
            len,
            chunk,
        }
    }

    /// The underlying label bytes (adversary-side introspection only).
    pub fn label(&self) -> &[u8] {
        let start = self.off as usize;
        &self.chunk[start..start + self.len as usize]
    }

    /// Length of the label in bytes — a proxy for how deeply nested in
    /// the interval-refinement recursion this item was minted.
    pub fn depth(&self) -> usize {
        self.len as usize
    }

    /// The item's arena id, if it carries a real one (`None` for the
    /// post-exhaustion [`NO_ID`] sentinel). Ids are globally unique and
    /// id equality proves label equality, so adversary-side bookkeeping
    /// (e.g. the equivalence checker's arrival-tag memo) may use the id
    /// as a stable identity key. Like [`label`](Self::label), this is
    /// adversary-side introspection only — summaries stay generic over
    /// `T: Ord + Clone` and physically cannot observe it.
    pub fn arena_id(&self) -> Option<u32> {
        (self.id != NO_ID).then_some(self.id)
    }

    /// A copy of this item carrying the [`NO_ID`] sentinel — test-only,
    /// for exercising the id-exhaustion comparison path without minting
    /// 2³² items.
    #[cfg(test)]
    pub(crate) fn with_no_id(&self) -> Self {
        Item {
            id: NO_ID,
            ..self.clone()
        }
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item(")?;
        for (i, b) in self.label().iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            if i >= 8 {
                write!(f, "\u{2026}")?;
                break;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Item::from_label(vec![1, 2]);
        let b = Item::from_label(vec![1, 2, 3]);
        let c = Item::from_label(vec![2]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn clone_is_equal() {
        let a = Item::from_label(vec![9, 9]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_compact() {
        let a = Item::from_label(vec![0xab; 20]);
        let s = format!("{a:?}");
        assert!(s.len() < 40, "debug too long: {s}");
    }

    #[test]
    fn fast_path_matches_slice_lexicographic_order() {
        // Exhaustive-ish differential check against the reference
        // (`<[u8]>::cmp`), with lengths straddling the 8-byte key/word
        // size and differences at every position.
        let mut labels: Vec<Vec<u8>> = vec![vec![]];
        for len in [1usize, 7, 8, 9, 15, 16, 17, 31] {
            for fill in [0u8, 1, 127, 255] {
                labels.push(vec![fill; len]);
                let mut v = vec![fill; len];
                v[len / 2] = fill.wrapping_add(1);
                labels.push(v);
                let mut w = vec![fill; len];
                w[len - 1] = fill.wrapping_sub(1);
                labels.push(w);
            }
        }
        for a in &labels {
            for b in &labels {
                let ia = Item::from_label(a.clone());
                let ib = Item::from_label(b.clone());
                assert_eq!(
                    ia.cmp(&ib),
                    a.as_slice().cmp(b.as_slice()),
                    "fast path diverged on {a:?} vs {b:?}"
                );
                assert_eq!(ia == ib, a == b);
            }
        }
    }

    #[test]
    fn shared_id_compares_equal_without_byte_walk() {
        let a = Item::from_label(vec![5; 1000]);
        let b = a.clone();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b);
    }

    #[test]
    fn equal_keys_divergent_tails_still_order_correctly() {
        // Shared 8-byte prefix: the key cannot decide, the tail must.
        let a = Item::from_label(vec![7, 7, 7, 7, 7, 7, 7, 7, 1]);
        let b = Item::from_label(vec![7, 7, 7, 7, 7, 7, 7, 7, 2]);
        let p = Item::from_label(vec![7, 7, 7, 7, 7, 7, 7, 7]);
        assert!(a < b);
        assert!(p < a, "8-byte prefix orders below its extensions");
    }

    #[test]
    fn zero_padded_key_collision_resolves_by_length() {
        // key([5]) == key([5,0,0,0,0,0,0,0,1]) — both pad to
        // 05 00 00 00 00 00 00 00. The shorter (a strict prefix once
        // padded) must order first, exactly as slice::cmp says.
        let short = Item::from_label(vec![5]);
        let long = Item::from_label(vec![5, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert!(short < long);
        assert_eq!(
            short.cmp(&long),
            short.label().cmp(long.label()),
            "key-equal path diverged from reference"
        );
    }

    #[test]
    fn no_id_sentinel_never_fast_paths_to_equal() {
        let a = Item::from_label(vec![3, 3]).with_no_id();
        let b = Item::from_label(vec![3, 3]).with_no_id();
        let c = Item::from_label(vec![3, 4]).with_no_id();
        // Equal bytes: still Equal — via the byte path, not the id.
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b);
        // Distinct bytes with matching sentinel ids must NOT be equal.
        assert!(a < c);
        assert_ne!(a, c);
        // Sentinel vs regular id also byte-compares.
        let d = Item::from_label(vec![3, 3]);
        assert_eq!(a.cmp(&d), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_equality_across_mints() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |it: &Item| {
            let mut s = DefaultHasher::new();
            it.hash(&mut s);
            s.finish()
        };
        let a = Item::from_label(vec![1, 2, 3]);
        let b = Item::from_label(vec![1, 2, 3]); // distinct mint, equal bytes
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }
}
