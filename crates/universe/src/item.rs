//! Opaque universe items.

use std::fmt;
use std::sync::Arc;

/// An element of the totally ordered universe.
///
/// Internally an item is an immutable byte-string label compared
/// lexicographically, but the label bytes are deliberately *not* part of
/// the comparison-based API surface used by summaries: a summary that is
/// generic over `T: Ord + Clone` and instantiated with `T = Item` can
/// only compare, test equality, hash, and clone — exactly the operations
/// permitted by Definition 2.1(i) of the paper.
///
/// Cloning is O(1) (the label is reference-counted).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(Arc<[u8]>);

impl Item {
    /// Wraps a raw label. Intended for the adversary/universe machinery;
    /// summaries should never construct items.
    pub fn from_label(label: Vec<u8>) -> Self {
        Item(label.into())
    }

    /// The underlying label bytes (adversary-side introspection only).
    pub fn label(&self) -> &[u8] {
        &self.0
    }

    /// Length of the label in bytes — a proxy for how deeply nested in
    /// the interval-refinement recursion this item was minted.
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            if i >= 8 {
                write!(f, "\u{2026}")?;
                break;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Item::from_label(vec![1, 2]);
        let b = Item::from_label(vec![1, 2, 3]);
        let c = Item::from_label(vec![2]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn clone_is_equal() {
        let a = Item::from_label(vec![9, 9]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_compact() {
        let a = Item::from_label(vec![0xab; 20]);
        let s = format!("{a:?}");
        assert!(s.len() < 40, "debug too long: {s}");
    }
}
