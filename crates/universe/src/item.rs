//! Opaque universe items.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An element of the totally ordered universe.
///
/// Internally an item is an immutable byte-string label compared
/// lexicographically, but the label bytes are deliberately *not* part of
/// the comparison-based API surface used by summaries: a summary that is
/// generic over `T: Ord + Clone` and instantiated with `T = Item` can
/// only compare, test equality, hash, and clone — exactly the operations
/// permitted by Definition 2.1(i) of the paper.
///
/// Cloning is O(1) (the label is reference-counted).
///
/// ## Comparison fast path
///
/// The same `Arc` is cloned into the stream index, the treap, and the
/// summary under attack, so a large share of comparisons on the
/// adversary hot path are an item against *itself*. `Ord`/`Eq` are
/// therefore implemented manually (not derived) with a pointer-equality
/// short-circuit before the byte-wise walk, and the byte-wise walk
/// compares 8-byte words at a time — refinement-minted labels share
/// long prefixes, so skipping the common prefix a word per step is the
/// dominant cost saver on deep labels. The observable semantics are
/// exactly the derived ones: lexicographic byte order.
#[derive(Clone, Eq)]
pub struct Item(Arc<[u8]>);

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

// Manual alongside the manual `PartialEq` (pointer equality implies
// label equality, so the `k1 == k2 ⇒ hash(k1) == hash(k2)` contract
// holds); hashes the label bytes exactly as the derive would.
impl std::hash::Hash for Item {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        lex_cmp(&self.0, &other.0)
    }
}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic byte comparison that skips the shared prefix one
/// `u64` word at a time before falling back to the per-byte verdict.
/// Equivalent to `a.cmp(b)` on byte slices.
fn lex_cmp(a: &[u8], b: &[u8]) -> Ordering {
    const W: usize = 8;
    let common = a.len().min(b.len());
    let mut i = 0;
    while i + W <= common {
        // Word-wise equality probe; big-endian interpretation preserves
        // lexicographic order, so the first differing word decides.
        let wa = u64::from_be_bytes(a[i..i + W].try_into().expect("8-byte chunk"));
        let wb = u64::from_be_bytes(b[i..i + W].try_into().expect("8-byte chunk"));
        if wa != wb {
            return wa.cmp(&wb);
        }
        i += W;
    }
    while i < common {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
        i += 1;
    }
    a.len().cmp(&b.len())
}

impl Item {
    /// Wraps a raw label. Intended for the adversary/universe machinery;
    /// summaries should never construct items.
    pub fn from_label(label: Vec<u8>) -> Self {
        Item(label.into())
    }

    /// The underlying label bytes (adversary-side introspection only).
    pub fn label(&self) -> &[u8] {
        &self.0
    }

    /// Length of the label in bytes — a proxy for how deeply nested in
    /// the interval-refinement recursion this item was minted.
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            if i >= 8 {
                write!(f, "\u{2026}")?;
                break;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Item::from_label(vec![1, 2]);
        let b = Item::from_label(vec![1, 2, 3]);
        let c = Item::from_label(vec![2]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn clone_is_equal() {
        let a = Item::from_label(vec![9, 9]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_compact() {
        let a = Item::from_label(vec![0xab; 20]);
        let s = format!("{a:?}");
        assert!(s.len() < 40, "debug too long: {s}");
    }

    #[test]
    fn fast_path_matches_slice_lexicographic_order() {
        // Exhaustive-ish differential check against the reference
        // (`<[u8]>::cmp`), with lengths straddling the 8-byte word size
        // and differences at every position.
        let mut labels: Vec<Vec<u8>> = vec![vec![]];
        for len in [1usize, 7, 8, 9, 15, 16, 17, 31] {
            for fill in [0u8, 1, 127, 255] {
                labels.push(vec![fill; len]);
                let mut v = vec![fill; len];
                v[len / 2] = fill.wrapping_add(1);
                labels.push(v);
                let mut w = vec![fill; len];
                w[len - 1] = fill.wrapping_sub(1);
                labels.push(w);
            }
        }
        for a in &labels {
            for b in &labels {
                let ia = Item::from_label(a.clone());
                let ib = Item::from_label(b.clone());
                assert_eq!(
                    ia.cmp(&ib),
                    a.as_slice().cmp(b.as_slice()),
                    "fast path diverged on {a:?} vs {b:?}"
                );
                assert_eq!(ia == ib, a == b);
            }
        }
    }

    #[test]
    fn shared_arc_compares_equal_via_pointer() {
        let a = Item::from_label(vec![5; 1000]);
        let b = a.clone();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b);
    }
}
