//! Open intervals over the universe, with ±∞ endpoints.

use std::cmp::Ordering;
use std::fmt;

use crate::item::Item;

/// One end of an open interval: −∞, a concrete item, or +∞.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Below every item.
    NegInf,
    /// A concrete universe item.
    Finite(Item),
    /// Above every item.
    PosInf,
}

impl Endpoint {
    /// Returns the contained item, if finite.
    pub fn as_item(&self) -> Option<&Item> {
        match self {
            Endpoint::Finite(it) => Some(it),
            _ => None,
        }
    }

    fn rank_class(&self) -> u8 {
        match self {
            Endpoint::NegInf => 0,
            Endpoint::Finite(_) => 1,
            Endpoint::PosInf => 2,
        }
    }

    /// Compares an endpoint against a concrete item, with −∞ below and
    /// +∞ above everything.
    pub fn cmp_item(&self, item: &Item) -> Ordering {
        match self {
            Endpoint::NegInf => Ordering::Less,
            Endpoint::Finite(e) => e.cmp(item),
            Endpoint::PosInf => Ordering::Greater,
        }
    }
}

impl PartialOrd for Endpoint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Endpoint {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Endpoint::Finite(a), Endpoint::Finite(b)) => a.cmp(b),
            _ => self.rank_class().cmp(&other.rank_class()),
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::NegInf => write!(f, "-inf"),
            Endpoint::Finite(it) => write!(f, "{it:?}"),
            Endpoint::PosInf => write!(f, "+inf"),
        }
    }
}

/// An open interval `(lo, hi)` of the universe with `lo < hi`.
///
/// The adversarial construction maintains one such "current interval" per
/// stream; all items appended at a node of the recursion tree are drawn
/// from inside it, and `RefineIntervals` replaces it with a strictly
/// nested one in an extreme region of the largest gap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interval {
    lo: Endpoint,
    hi: Endpoint,
}

impl Interval {
    /// The whole universe `(−∞, +∞)`.
    pub fn whole() -> Self {
        Interval {
            lo: Endpoint::NegInf,
            hi: Endpoint::PosInf,
        }
    }

    /// An open interval between two concrete items.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn open(lo: Item, hi: Item) -> Self {
        assert!(lo < hi, "interval requires lo < hi");
        Interval {
            lo: Endpoint::Finite(lo),
            hi: Endpoint::Finite(hi),
        }
    }

    /// An open interval between two endpoints.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(lo: Endpoint, hi: Endpoint) -> Self {
        assert!(lo < hi, "interval requires lo < hi");
        assert!(lo != Endpoint::PosInf && hi != Endpoint::NegInf);
        Interval { lo, hi }
    }

    /// Everything above `lo` — used by the biased-quantiles phase
    /// construction, which always appends items larger than all before.
    pub fn above(lo: Item) -> Self {
        Interval {
            lo: Endpoint::Finite(lo),
            hi: Endpoint::PosInf,
        }
    }

    /// The low endpoint.
    pub fn lo(&self) -> &Endpoint {
        &self.lo
    }

    /// The high endpoint.
    pub fn hi(&self) -> &Endpoint {
        &self.hi
    }

    /// Open-interval membership.
    pub fn contains(&self, item: &Item) -> bool {
        self.lo.cmp_item(item) == Ordering::Less && self.hi.cmp_item(item) == Ordering::Greater
    }

    /// Whether `other` is contained in `self` (not necessarily strictly).
    pub fn encloses(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(bytes: &[u8]) -> Item {
        Item::from_label(bytes.to_vec())
    }

    #[test]
    fn endpoint_ordering() {
        let a = Endpoint::Finite(item(&[5]));
        let b = Endpoint::Finite(item(&[9]));
        assert!(Endpoint::NegInf < a);
        assert!(a < b);
        assert!(b < Endpoint::PosInf);
        assert!(Endpoint::NegInf < Endpoint::PosInf);
    }

    #[test]
    fn whole_contains_everything() {
        let iv = Interval::whole();
        assert!(iv.contains(&item(&[0, 1])));
        assert!(iv.contains(&item(&[255, 255])));
    }

    #[test]
    fn open_interval_excludes_endpoints() {
        let iv = Interval::open(item(&[10]), item(&[20]));
        assert!(!iv.contains(&item(&[10])));
        assert!(!iv.contains(&item(&[20])));
        assert!(iv.contains(&item(&[15])));
        assert!(!iv.contains(&item(&[5])));
        assert!(!iv.contains(&item(&[25])));
    }

    #[test]
    fn encloses_is_reflexive_and_respects_nesting() {
        let big = Interval::open(item(&[1]), item(&[100]));
        let small = Interval::open(item(&[10]), item(&[20]));
        assert!(big.encloses(&big));
        assert!(big.encloses(&small));
        assert!(!small.encloses(&big));
        assert!(Interval::whole().encloses(&big));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn degenerate_interval_rejected() {
        Interval::open(item(&[10]), item(&[10]));
    }
}
