//! On-demand replay of a minted run — the implicit stream's label oracle.
//!
//! [`crate::generate_labels_into`] mints a run of `n` labels inside an
//! open interval by deterministic balanced subdivision: `fill_labels(lo,
//! hi, n)` computes `mid = between(lo, hi)`, recurses on the left half
//! (`m = n/2` labels), emits `mid` (the `m`-th label, 0-based), and
//! recurses on the right half. The label at every in-order index is
//! therefore a **pure function of `(lo, hi, n)`** — nothing about it
//! depends on the rest of the stream.
//!
//! A [`RunGenerator`] exploits this: it stores only the interval
//! endpoints and the count, and answers
//!
//! * [`label_at`](RunGenerator::label_at) — the `j`-th label of the run,
//! * [`count_less`](RunGenerator::count_less) /
//!   [`count_le`](RunGenerator::count_le) — how many run labels compare
//!   below a probe, and
//! * [`index_of`](RunGenerator::index_of) — the index of an exact label,
//!
//! each in O(log n) midpoint computations, by descending the same
//! subdivision the minting walk performed. Every answer is
//! byte-identical to what the materialized run would give, because both
//! replay the identical [`crate::between_labels`] recursion — that
//! equality is what lets the adversary's interval-compressed stream
//! representation drop O(N) stored items without changing a single
//! observable comparison outcome.

use crate::interval::Endpoint;
use crate::item::Item;
use crate::label::between_labels_into;
use crate::Interval;

/// The label oracle of one minted run: `count` virtual items strictly
/// inside the open interval `(lo, hi)`, in the exact byte order the
/// materialized [`crate::generate_increasing`] run would have.
#[derive(Clone)]
pub struct RunGenerator {
    lo: Option<Item>,
    hi: Option<Item>,
    count: u64,
}

impl RunGenerator {
    /// A generator for the run of `count` items the balanced subdivision
    /// mints inside `interval`.
    ///
    /// # Panics
    ///
    /// Panics on the same endpoint violations
    /// [`crate::generate_labels_into`] rejects: an empty or
    /// trailing-`0x00` finite label, or `lo >= hi`.
    pub fn new(interval: &Interval, count: u64) -> Self {
        let lo = match interval.lo() {
            Endpoint::NegInf => None,
            Endpoint::Finite(item) => Some(item.clone()),
            Endpoint::PosInf => panic!("interval low endpoint cannot be +inf"),
        };
        let hi = match interval.hi() {
            Endpoint::PosInf => None,
            Endpoint::Finite(item) => Some(item.clone()),
            Endpoint::NegInf => panic!("interval high endpoint cannot be -inf"),
        };
        for side in [&lo, &hi].into_iter().flatten() {
            let label = side.label();
            assert!(!label.is_empty(), "finite label must be non-empty");
            assert!(
                label.last().is_some_and(|b| *b != 0),
                "label must not end in 0x00"
            );
        }
        if let (Some(a), Some(b)) = (&lo, &hi) {
            assert!(a < b, "run generator requires lo < hi");
        }
        RunGenerator { lo, hi, count }
    }

    /// Number of virtual items in the run.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The run's exclusive low endpoint, if finite.
    pub fn lo(&self) -> Option<&Item> {
        self.lo.as_ref()
    }

    /// The run's exclusive high endpoint, if finite.
    pub fn hi(&self) -> Option<&Item> {
        self.hi.as_ref()
    }

    /// The label of the `j`-th (0-based, in label order) virtual item.
    ///
    /// # Panics
    ///
    /// Panics if `j >= count`.
    pub fn label_at(&self, j: u64) -> Vec<u8> {
        assert!(j < self.count, "run index {j} out of range {}", self.count);
        let mut lo: Option<Vec<u8>> = self.lo.as_ref().map(|i| i.label().to_vec());
        let mut hi: Option<Vec<u8>> = self.hi.as_ref().map(|i| i.label().to_vec());
        let mut n = self.count;
        let mut j = j;
        let mut mid = Vec::new();
        loop {
            let m = n / 2;
            between_labels_into(lo.as_deref(), hi.as_deref(), &mut mid);
            match j.cmp(&m) {
                std::cmp::Ordering::Equal => return mid,
                std::cmp::Ordering::Less => {
                    hi = Some(std::mem::take(&mut mid));
                    n = m;
                }
                std::cmp::Ordering::Greater => {
                    lo = Some(std::mem::take(&mut mid));
                    j -= m + 1;
                    n -= m + 1;
                }
            }
        }
    }

    /// [`label_at`](Self::label_at) wrapped into a freshly minted
    /// [`Item`]. The mint gets its own arena id, but it compares equal
    /// to any other materialization of the same virtual item — equality
    /// is decided by the label bytes.
    pub fn item_at(&self, j: u64) -> Item {
        Item::from_label(self.label_at(j))
    }

    /// How many of the run's virtual items have labels strictly below
    /// `q`. The probe may be any byte string, inside the interval or
    /// not.
    pub fn count_less(&self, q: &[u8]) -> u64 {
        match self.descend(q) {
            Descent::Hit(idx) => idx,
            Descent::Miss(below) => below,
        }
    }

    /// How many of the run's virtual items have labels `<= q`.
    pub fn count_le(&self, q: &[u8]) -> u64 {
        match self.descend(q) {
            Descent::Hit(idx) => idx + 1,
            Descent::Miss(below) => below,
        }
    }

    /// The in-run index of the virtual item with label exactly `q`, if
    /// the run contains one.
    pub fn index_of(&self, q: &[u8]) -> Option<u64> {
        match self.descend(q) {
            Descent::Hit(idx) => Some(idx),
            Descent::Miss(_) => None,
        }
    }

    /// Shared descent of the point queries. At each level the probe is
    /// compared against the level's midpoint label: an equal probe *is*
    /// the level's emitted label (in-run index = accumulated left count
    /// plus the left half's size), smaller probes descend left, larger
    /// descend right accumulating the left half plus the midpoint.
    fn descend(&self, q: &[u8]) -> Descent {
        let mut lo: Option<Vec<u8>> = self.lo.as_ref().map(|i| i.label().to_vec());
        let mut hi: Option<Vec<u8>> = self.hi.as_ref().map(|i| i.label().to_vec());
        let mut n = self.count;
        let mut acc = 0u64;
        let mut mid = Vec::new();
        while n > 0 {
            let m = n / 2;
            between_labels_into(lo.as_deref(), hi.as_deref(), &mut mid);
            match q.cmp(mid.as_slice()) {
                std::cmp::Ordering::Equal => return Descent::Hit(acc + m),
                std::cmp::Ordering::Less => {
                    hi = Some(std::mem::take(&mut mid));
                    n = m;
                }
                std::cmp::Ordering::Greater => {
                    acc += m + 1;
                    lo = Some(std::mem::take(&mut mid));
                    n -= m + 1;
                }
            }
        }
        Descent::Miss(acc)
    }
}

/// Where a point-query descent ended: exactly on the virtual item at
/// an in-run index, or between items with `Miss(number of items below)`.
enum Descent {
    Hit(u64),
    Miss(u64),
}

impl std::fmt::Debug for RunGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RunGenerator({:?}..{:?} x{})",
            self.lo, self.hi, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_increasing;

    fn check_against_materialized(iv: &Interval, n: u64) {
        let items = generate_increasing(iv, n as usize);
        let gen = RunGenerator::new(iv, n);
        assert_eq!(gen.count(), n);
        for (j, it) in items.iter().enumerate() {
            assert_eq!(
                gen.label_at(j as u64),
                it.label(),
                "label_at({j}) diverged from materialized run"
            );
            assert_eq!(gen.index_of(it.label()), Some(j as u64));
            assert_eq!(gen.count_less(it.label()), j as u64);
            assert_eq!(gen.count_le(it.label()), j as u64 + 1);
            assert_eq!(gen.item_at(j as u64), *it);
        }
        // Probes strictly between adjacent run items.
        for w in items.windows(2) {
            let probe = crate::between_labels(Some(w[0].label()), Some(w[1].label()));
            let r = gen.count_less(w[1].label());
            assert_eq!(gen.count_less(&probe), r);
            assert_eq!(gen.count_le(&probe), r);
            assert_eq!(gen.index_of(&probe), None);
        }
    }

    #[test]
    fn replays_whole_universe_run() {
        check_against_materialized(&Interval::whole(), 0);
        check_against_materialized(&Interval::whole(), 1);
        check_against_materialized(&Interval::whole(), 2);
        check_against_materialized(&Interval::whole(), 37);
        check_against_materialized(&Interval::whole(), 128);
    }

    #[test]
    fn replays_tight_interval_run() {
        let a = Item::from_label(vec![7]);
        let b = Item::from_label(vec![7, 1]);
        check_against_materialized(&Interval::open(a, b), 63);
    }

    #[test]
    fn replays_one_sided_intervals() {
        let a = Item::from_label(vec![128]);
        let above = Interval::new(Endpoint::Finite(a.clone()), Endpoint::PosInf);
        check_against_materialized(&above, 41);
        let below = Interval::new(Endpoint::NegInf, Endpoint::Finite(a));
        check_against_materialized(&below, 17);
    }

    #[test]
    fn probes_outside_the_interval_clamp() {
        let a = Item::from_label(vec![50]);
        let b = Item::from_label(vec![60]);
        let gen = RunGenerator::new(&Interval::open(a.clone(), b.clone()), 33);
        assert_eq!(gen.count_less(a.label()), 0);
        assert_eq!(gen.count_le(a.label()), 0);
        assert_eq!(gen.count_less(b.label()), 33);
        assert_eq!(gen.count_le(b.label()), 33);
        assert_eq!(gen.count_less(&[0]), 0);
        assert_eq!(gen.count_less(&[255]), 33);
        assert_eq!(gen.index_of(a.label()), None);
        assert_eq!(gen.index_of(&[0, 1]), None);
    }

    #[test]
    fn nested_generators_compose_like_nested_runs() {
        // A run minted inside an interval whose endpoints are themselves
        // items of an outer run — the refinement pattern.
        let outer = generate_increasing(&Interval::whole(), 16);
        let iv = Interval::open(outer[7].clone(), outer[8].clone());
        check_against_materialized(&iv, 29);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_at_rejects_out_of_range() {
        RunGenerator::new(&Interval::whole(), 4).label_at(4);
    }
}
