//! Fractional-indexing label algebra.
//!
//! Labels are byte strings ordered lexicographically, with the invariant
//! that no label ends in `0x00`. Under that invariant, a strictly
//! in-between label exists for every pair `a < b` and [`between_labels`]
//! constructs one. `None` endpoints stand for −∞ (low side) and +∞
//! (high side) respectively.
//!
//! The construction is the classic midpoint algorithm used by fractional
//! indexing systems, here with base-256 digits: strip the common prefix,
//! then either take a middle digit or recurse with the low label's tail
//! against +∞.

use crate::interval::Endpoint;

const HALF: u8 = 128;

/// Returns a label strictly between `a` and `b`, where `None` on the low
/// side means −∞ and `None` on the high side means +∞.
///
/// Both inputs, when present, must be non-empty, must not end in `0x00`,
/// and must satisfy `a < b`. The returned label preserves the
/// no-trailing-zero invariant.
///
/// # Panics
///
/// Panics if the inputs violate the preconditions.
pub fn between_labels(a: Option<&[u8]>, b: Option<&[u8]>) -> Vec<u8> {
    if let Some(a) = a {
        assert!(!a.is_empty(), "finite label must be non-empty");
        assert!(*a.last().unwrap() != 0, "label must not end in 0x00");
    }
    if let Some(b) = b {
        assert!(!b.is_empty(), "finite label must be non-empty");
        assert!(*b.last().unwrap() != 0, "label must not end in 0x00");
    }
    if let (Some(a), Some(b)) = (a, b) {
        assert!(a < b, "between_labels requires a < b, got {a:?} !< {b:?}");
    }
    let mut out = Vec::new();
    midpoint(a.unwrap_or(&[]), b, &mut out);
    debug_assert!(!out.is_empty());
    debug_assert!(*out.last().unwrap() != 0);
    if let Some(a) = a {
        debug_assert!(out.as_slice() > a);
    }
    if let Some(b) = b {
        debug_assert!(out.as_slice() < b);
    }
    out
}

/// [`between_labels`] minus the precondition re-checks and the fresh
/// allocation — for crate callers whose construction guarantees the
/// invariants (balanced subdivision maintains `lo < mid < hi` and the
/// no-trailing-zero rule by induction, and
/// [`crate::generate_labels_into`] validates the run's outer endpoints
/// once up front). The checked entry point re-compares `a < b` —
/// O(label depth) — and allocates a `Vec` on every call, which together
/// dominated minting a dense run under a deeply refined interval; this
/// one writes into a caller-pooled buffer instead.
pub(crate) fn between_labels_into(a: Option<&[u8]>, b: Option<&[u8]>, out: &mut Vec<u8>) {
    out.clear();
    midpoint(a.unwrap_or(&[]), b, out);
    debug_assert!(!out.is_empty());
    debug_assert!(*out.last().unwrap() != 0);
    if let Some(a) = a {
        debug_assert!(out.as_slice() > a);
    }
    if let Some(b) = b {
        debug_assert!(out.as_slice() < b);
    }
}

/// Returns a fresh label strictly inside the open interval `(lo, hi)`.
pub fn label_in(lo: &Endpoint, hi: &Endpoint) -> Vec<u8> {
    let a = match lo {
        Endpoint::NegInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::PosInf => panic!("interval low endpoint cannot be +inf"),
    };
    let b = match hi {
        Endpoint::PosInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::NegInf => panic!("interval high endpoint cannot be -inf"),
    };
    between_labels(a, b)
}

/// Midpoint between `a` (empty slice = −∞ side, i.e. all-zero padding)
/// and `b` (`None` = +∞). Requires `a < b` where the empty `a` compares
/// below everything and `None` `b` above everything.
///
/// Iterative: the shared prefix, the split digit, and the low-side
/// descent are all appended to ONE caller-provided output vector. The
/// recursive formulation allocated a fresh `Vec` per nesting level,
/// which made minting under a deeply refined interval (label depth
/// Θ(εN) in the worst case) allocation-bound.
fn midpoint(mut a: &[u8], mut b: Option<&[u8]>, out: &mut Vec<u8>) {
    // Copy the common prefix (treating `a` as zero-padded past its end).
    // `a < b` guarantees the prefix never consumes all of `b`, so the
    // tail stays non-empty.
    if let Some(bs) = b {
        let i = padded_common_prefix(a, bs);
        if i > 0 {
            out.extend_from_slice(bs.get(..i).unwrap_or(bs));
            a = a.get(i..).unwrap_or(&[]);
            b = bs.get(i..).filter(|t| !t.is_empty());
        }
    }
    // First digits differ (or b = +∞).
    let da = u16::from(digit(a, 0));
    let db = match b.and_then(|bs| bs.first()) {
        Some(&d) => u16::from(d),
        None => 256,
    };
    debug_assert!(da < db, "midpoint precondition violated: {da} >= {db}");
    if db - da > 1 {
        // A digit strictly between exists; it is nonzero because db >= 2.
        let mid = ((da + db) / 2) as u8;
        debug_assert!(u16::from(mid) > da && u16::from(mid) < db);
        out.push(mid);
    } else {
        // Consecutive first digits: descend on the low side, unconstrained
        // above. `[da] ++ x` with `x > a[1..]` sits strictly inside; `x`
        // copies `a`'s maximal 0xFF run, then one digit above the first
        // non-0xFF digit (or HALF past `a`'s end) beats any tail.
        out.push(da as u8);
        let mut rest = a.get(1..).unwrap_or(&[]);
        loop {
            match rest.first() {
                None => {
                    out.push(HALF);
                    break;
                }
                Some(&a0) if a0 < u8::MAX => {
                    let mid = ((u16::from(a0) + 256) / 2) as u8;
                    debug_assert!(mid > a0);
                    out.push(mid);
                    break;
                }
                Some(&a0) => {
                    out.push(a0);
                    rest = rest.get(1..).unwrap_or(&[]);
                }
            }
        }
    }
}

#[inline]
fn digit(a: &[u8], i: usize) -> u8 {
    a.get(i).copied().unwrap_or(0)
}

/// Length of the common prefix of `a` — treated as zero-padded past its
/// end — and `b`. The overlap is scanned one `u64` word at a time
/// (refinement nests labels ~k bytes deep, so the byte-wise scan
/// dominated minting); the little-endian view makes the first differing
/// byte the XOR's lowest nonzero byte on every platform.
fn padded_common_prefix(a: &[u8], b: &[u8]) -> usize {
    const W: usize = 8;
    let overlap = a.len().min(b.len());
    let mut i = 0;
    while i + W <= overlap {
        let wa = u64::from_le_bytes(a[i..i + W].try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(b[i..i + W].try_into().expect("8-byte chunk"));
        if wa != wb {
            return i + ((wa ^ wb).trailing_zeros() / 8) as usize;
        }
        i += W;
    }
    while i < overlap {
        if a.get(i) != b.get(i) {
            return i;
        }
        i += 1;
    }
    // `a` exhausted: its zero padding keeps matching while `b` runs 0x00.
    while b.get(i) == Some(&0) {
        i += 1;
    }
    i
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary valid label: non-empty, no trailing zero.
    fn label_strategy() -> impl Strategy<Value = Vec<u8>> {
        (proptest::collection::vec(any::<u8>(), 0..6), 1u8..=255).prop_map(|(mut v, last)| {
            v.push(last);
            v
        })
    }

    proptest! {
        #[test]
        fn between_any_two_valid_labels(a in label_strategy(), b in label_strategy()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let m = between_labels(Some(&lo), Some(&hi));
            prop_assert!(m.as_slice() > lo.as_slice(), "{m:?} !> {lo:?}");
            prop_assert!(m.as_slice() < hi.as_slice(), "{m:?} !< {hi:?}");
            prop_assert!(*m.last().unwrap() != 0);
        }

        #[test]
        fn between_one_sided(a in label_strategy()) {
            let above = between_labels(Some(&a), None);
            prop_assert!(above.as_slice() > a.as_slice());
            let below = between_labels(None, Some(&a));
            prop_assert!(below.as_slice() < a.as_slice());
        }

        #[test]
        fn repeated_bisection_from_random_pair(a in label_strategy(), b in label_strategy()) {
            prop_assume!(a != b);
            let (mut lo, hi) = if a < b { (a, b) } else { (b, a) };
            // 64 nested bisections toward hi must all succeed.
            for _ in 0..64 {
                let m = between_labels(Some(&lo), Some(&hi));
                prop_assert!(lo < m && m < hi);
                lo = m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: Option<&[u8]>, b: Option<&[u8]>) -> Vec<u8> {
        let m = between_labels(a, b);
        if let Some(a) = a {
            assert!(m.as_slice() > a, "{m:?} !> {a:?}");
        }
        if let Some(b) = b {
            assert!(m.as_slice() < b, "{m:?} !< {b:?}");
        }
        assert!(*m.last().unwrap() != 0);
        m
    }

    #[test]
    fn midpoint_of_whole_universe() {
        assert_eq!(check(None, None), vec![HALF]);
    }

    #[test]
    fn midpoint_simple_digits() {
        assert_eq!(check(Some(&[10]), Some(&[20])), vec![15]);
    }

    #[test]
    fn consecutive_digits_recurse() {
        // Between [10] and [11] nothing fits in one digit.
        let m = check(Some(&[10]), Some(&[11]));
        assert_eq!(m[0], 10);
        assert!(m.len() > 1);
    }

    #[test]
    fn shared_prefix_is_kept() {
        let m = check(Some(&[5, 5]), Some(&[5, 9]));
        assert_eq!(m[0], 5);
    }

    #[test]
    fn prefix_of_each_other() {
        // a = [5], b = [5, 1]: the in-between label must start 5, 0, ...
        let m = check(Some(&[5]), Some(&[5, 1]));
        assert!(m.starts_with(&[5, 0]));
    }

    #[test]
    fn below_smallest_positive() {
        // (−∞, [1]) — must produce something starting with 0.
        let m = check(None, Some(&[1]));
        assert_eq!(m[0], 0);
    }

    #[test]
    fn above_max_digit_chain() {
        let m = check(Some(&[255, 255]), None);
        assert!(m.as_slice() > &[255u8, 255][..]);
    }

    #[test]
    fn repeated_splitting_low_side_terminates_quickly() {
        // Repeatedly halve toward the low endpoint; length growth is linear
        // in iterations but every step succeeds.
        let mut hi = vec![HALF];
        for _ in 0..200 {
            let m = check(None, Some(&hi));
            hi = m;
        }
    }

    #[test]
    fn repeated_splitting_high_side() {
        let mut lo = vec![HALF];
        for _ in 0..200 {
            let m = check(Some(&lo), None);
            lo = m;
        }
    }

    #[test]
    fn dense_interval_split() {
        // Keep splitting the same narrow interval; a fresh label must exist
        // every time (continuity of the universe).
        let mut lo = vec![7];
        let hi = vec![7, 1];
        for _ in 0..100 {
            lo = check(Some(&lo), Some(&hi));
        }
    }

    #[test]
    #[should_panic(expected = "requires a < b")]
    fn rejects_equal_labels() {
        between_labels(Some(&[3]), Some(&[3]));
    }

    #[test]
    #[should_panic(expected = "must not end in 0x00")]
    fn rejects_trailing_zero() {
        between_labels(Some(&[3, 0]), Some(&[4]));
    }
}
