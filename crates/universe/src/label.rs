//! Fractional-indexing label algebra.
//!
//! Labels are byte strings ordered lexicographically, with the invariant
//! that no label ends in `0x00`. Under that invariant, a strictly
//! in-between label exists for every pair `a < b` and [`between_labels`]
//! constructs one. `None` endpoints stand for −∞ (low side) and +∞
//! (high side) respectively.
//!
//! The construction is the classic midpoint algorithm used by fractional
//! indexing systems, here with base-256 digits: strip the common prefix,
//! then either take a middle digit or recurse with the low label's tail
//! against +∞.

use crate::interval::Endpoint;

const HALF: u8 = 128;

/// Returns a label strictly between `a` and `b`, where `None` on the low
/// side means −∞ and `None` on the high side means +∞.
///
/// Both inputs, when present, must be non-empty, must not end in `0x00`,
/// and must satisfy `a < b`. The returned label preserves the
/// no-trailing-zero invariant.
///
/// # Panics
///
/// Panics if the inputs violate the preconditions.
pub fn between_labels(a: Option<&[u8]>, b: Option<&[u8]>) -> Vec<u8> {
    if let Some(a) = a {
        assert!(!a.is_empty(), "finite label must be non-empty");
        assert!(*a.last().unwrap() != 0, "label must not end in 0x00");
    }
    if let Some(b) = b {
        assert!(!b.is_empty(), "finite label must be non-empty");
        assert!(*b.last().unwrap() != 0, "label must not end in 0x00");
    }
    if let (Some(a), Some(b)) = (a, b) {
        assert!(a < b, "between_labels requires a < b, got {a:?} !< {b:?}");
    }
    let out = midpoint(a.unwrap_or(&[]), b);
    debug_assert!(!out.is_empty());
    debug_assert!(*out.last().unwrap() != 0);
    if let Some(a) = a {
        debug_assert!(out.as_slice() > a);
    }
    if let Some(b) = b {
        debug_assert!(out.as_slice() < b);
    }
    out
}

/// Returns a fresh label strictly inside the open interval `(lo, hi)`.
pub fn label_in(lo: &Endpoint, hi: &Endpoint) -> Vec<u8> {
    let a = match lo {
        Endpoint::NegInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::PosInf => panic!("interval low endpoint cannot be +inf"),
    };
    let b = match hi {
        Endpoint::PosInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::NegInf => panic!("interval high endpoint cannot be -inf"),
    };
    between_labels(a, b)
}

/// Midpoint between `a` (empty slice = −∞ side, i.e. all-zero padding)
/// and `b` (`None` = +∞). Requires `a < b` where the empty `a` compares
/// below everything and `None` `b` above everything.
fn midpoint(a: &[u8], b: Option<&[u8]>) -> Vec<u8> {
    if let Some(b) = b {
        // Strip the common prefix (treating `a` as zero-padded past its end).
        let mut i = 0;
        while i < b.len() && digit(a, i) == b[i] {
            i += 1;
        }
        if i > 0 {
            let mut out = b[..i].to_vec();
            let a_tail = if i <= a.len() { &a[i..] } else { &[][..] };
            out.extend_from_slice(&midpoint(a_tail, Some(&b[i..])));
            return out;
        }
    }
    // First digits differ (or b = +∞).
    let da = u16::from(digit(a, 0));
    let db = match b {
        Some(b) => u16::from(b[0]),
        None => 256,
    };
    debug_assert!(da < db, "midpoint precondition violated: {da} >= {db}");
    if db - da > 1 {
        // A digit strictly between exists; it is nonzero because db >= 2.
        let mid = ((da + db) / 2) as u8;
        debug_assert!(u16::from(mid) > da && u16::from(mid) < db);
        vec![mid]
    } else {
        // Consecutive first digits: descend on the low side, unconstrained
        // above. `[da] ++ x` with `x > a[1..]` sits strictly inside.
        let a_tail = if a.is_empty() { &[][..] } else { &a[1..] };
        let mut out = vec![da as u8];
        out.extend_from_slice(&above(a_tail));
        out
    }
}

/// Returns a label strictly greater than `a` (with no upper constraint),
/// never ending in zero.
fn above(a: &[u8]) -> Vec<u8> {
    if a.is_empty() {
        return vec![HALF];
    }
    let a0 = a[0];
    if a0 < u8::MAX {
        // Any single digit in (a0, 256) beats `a` regardless of its tail.
        let mid = ((u16::from(a0) + 256) / 2) as u8;
        debug_assert!(mid > a0);
        vec![mid]
    } else {
        let mut out = vec![a0];
        out.extend_from_slice(&above(&a[1..]));
        out
    }
}

#[inline]
fn digit(a: &[u8], i: usize) -> u8 {
    a.get(i).copied().unwrap_or(0)
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary valid label: non-empty, no trailing zero.
    fn label_strategy() -> impl Strategy<Value = Vec<u8>> {
        (proptest::collection::vec(any::<u8>(), 0..6), 1u8..=255).prop_map(|(mut v, last)| {
            v.push(last);
            v
        })
    }

    proptest! {
        #[test]
        fn between_any_two_valid_labels(a in label_strategy(), b in label_strategy()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let m = between_labels(Some(&lo), Some(&hi));
            prop_assert!(m.as_slice() > lo.as_slice(), "{m:?} !> {lo:?}");
            prop_assert!(m.as_slice() < hi.as_slice(), "{m:?} !< {hi:?}");
            prop_assert!(*m.last().unwrap() != 0);
        }

        #[test]
        fn between_one_sided(a in label_strategy()) {
            let above = between_labels(Some(&a), None);
            prop_assert!(above.as_slice() > a.as_slice());
            let below = between_labels(None, Some(&a));
            prop_assert!(below.as_slice() < a.as_slice());
        }

        #[test]
        fn repeated_bisection_from_random_pair(a in label_strategy(), b in label_strategy()) {
            prop_assume!(a != b);
            let (mut lo, hi) = if a < b { (a, b) } else { (b, a) };
            // 64 nested bisections toward hi must all succeed.
            for _ in 0..64 {
                let m = between_labels(Some(&lo), Some(&hi));
                prop_assert!(lo < m && m < hi);
                lo = m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: Option<&[u8]>, b: Option<&[u8]>) -> Vec<u8> {
        let m = between_labels(a, b);
        if let Some(a) = a {
            assert!(m.as_slice() > a, "{m:?} !> {a:?}");
        }
        if let Some(b) = b {
            assert!(m.as_slice() < b, "{m:?} !< {b:?}");
        }
        assert!(*m.last().unwrap() != 0);
        m
    }

    #[test]
    fn midpoint_of_whole_universe() {
        assert_eq!(check(None, None), vec![HALF]);
    }

    #[test]
    fn midpoint_simple_digits() {
        assert_eq!(check(Some(&[10]), Some(&[20])), vec![15]);
    }

    #[test]
    fn consecutive_digits_recurse() {
        // Between [10] and [11] nothing fits in one digit.
        let m = check(Some(&[10]), Some(&[11]));
        assert_eq!(m[0], 10);
        assert!(m.len() > 1);
    }

    #[test]
    fn shared_prefix_is_kept() {
        let m = check(Some(&[5, 5]), Some(&[5, 9]));
        assert_eq!(m[0], 5);
    }

    #[test]
    fn prefix_of_each_other() {
        // a = [5], b = [5, 1]: the in-between label must start 5, 0, ...
        let m = check(Some(&[5]), Some(&[5, 1]));
        assert!(m.starts_with(&[5, 0]));
    }

    #[test]
    fn below_smallest_positive() {
        // (−∞, [1]) — must produce something starting with 0.
        let m = check(None, Some(&[1]));
        assert_eq!(m[0], 0);
    }

    #[test]
    fn above_max_digit_chain() {
        let m = check(Some(&[255, 255]), None);
        assert!(m.as_slice() > &[255u8, 255][..]);
    }

    #[test]
    fn repeated_splitting_low_side_terminates_quickly() {
        // Repeatedly halve toward the low endpoint; length growth is linear
        // in iterations but every step succeeds.
        let mut hi = vec![HALF];
        for _ in 0..200 {
            let m = check(None, Some(&hi));
            hi = m;
        }
    }

    #[test]
    fn repeated_splitting_high_side() {
        let mut lo = vec![HALF];
        for _ in 0..200 {
            let m = check(Some(&lo), None);
            lo = m;
        }
    }

    #[test]
    fn dense_interval_split() {
        // Keep splitting the same narrow interval; a fresh label must exist
        // every time (continuity of the universe).
        let mut lo = vec![7];
        let hi = vec![7, 1];
        for _ in 0..100 {
            lo = check(Some(&lo), Some(&hi));
        }
    }

    #[test]
    #[should_panic(expected = "requires a < b")]
    fn rejects_equal_labels() {
        between_labels(Some(&[3]), Some(&[3]));
    }

    #[test]
    #[should_panic(expected = "must not end in 0x00")]
    fn rejects_trailing_zero() {
        between_labels(Some(&[3, 0]), Some(&[4]));
    }
}
