#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A continuous, unbounded, totally ordered universe of opaque items.
//!
//! The lower-bound proof of Cormode & Veselý (PODS'20) assumes a universe
//! that is *continuous*: any non-empty open interval contains an unbounded
//! number of items, so the adversary can always draw a fresh element
//! strictly between any two previously observed ones. The paper suggests
//! realising such a universe as "a large enough set of long incompressible
//! strings, ordered lexicographically".
//!
//! This crate implements exactly that: an [`Item`] is an immutable byte
//! string compared lexicographically, and [`between_labels`] produces a fresh
//! label strictly inside any open interval. Labels never end in a `0x00`
//! byte, which is the invariant that guarantees a strict in-between label
//! always exists (between `b"ab"` and `b"ab\0"` there is no byte string,
//! so trailing-zero labels are never minted).
//!
//! The only operations a consumer of [`Item`] gets are comparison,
//! equality, hashing and cloning — which is precisely the comparison-based
//! model of Definition 2.1 in the paper. Code that is generic over
//! `T: Ord` and is instantiated with `T = Item` is therefore
//! machine-checked to be comparison-based: it cannot average items, hash
//! them into buckets by value structure, or otherwise inspect them.
//!
//! # Example
//!
//! ```
//! use cqs_universe::{Interval, between_items, generate_increasing};
//!
//! let whole = Interval::whole();
//! let items = generate_increasing(&whole, 5);
//! assert!(items.windows(2).all(|w| w[0] < w[1]));
//!
//! // The universe is continuous: we can always go in between.
//! let mid = between_items(&items[1], &items[2]);
//! assert!(items[1] < mid && mid < items[2]);
//! ```

mod interval;
mod item;
mod label;

pub use interval::{Endpoint, Interval};
pub use item::Item;
pub use label::{between_labels, label_in};

/// Produces a fresh item strictly between `a` and `b`.
///
/// # Panics
///
/// Panics if `a >= b`; the open interval `(a, b)` must be non-empty,
/// which for this universe just means `a < b`.
pub fn between_items(a: &Item, b: &Item) -> Item {
    assert!(a < b, "between_items requires a < b");
    Item::from_label(between_labels(Some(a.label()), Some(b.label())))
}

/// Generates `n` strictly increasing fresh items inside the open interval.
///
/// The items are produced by balanced binary subdivision, so label length
/// grows only O(log n) rather than O(n) as naive repeated insertion after
/// the previous item would give.
pub fn generate_increasing(interval: &Interval, n: usize) -> Vec<Item> {
    let mut out: Vec<Option<Item>> = vec![None; n];
    fill(interval.lo(), interval.hi(), &mut out);
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// Compile-time audit that items (and the endpoints and intervals built
/// from them) can be shared across the `cqs-bench` parallel sweep
/// pool's worker threads. The `sharding-send-sync` lint rule keeps
/// these lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit() {
    fn assert_send<T: Send + Sync>() {}
    assert_send::<Item>();
    assert_send::<Endpoint>();
    assert_send::<Interval>();
}

fn fill(lo: &Endpoint, hi: &Endpoint, out: &mut [Option<Item>]) {
    if out.is_empty() {
        return;
    }
    let m = out.len() / 2;
    let mid = Item::from_label(label_in(lo, hi));
    let mid_ep = Endpoint::Finite(mid.clone());
    {
        let (left, rest) = out.split_at_mut(m);
        fill(lo, &mid_ep, left);
        rest[0] = Some(mid);
        fill(&mid_ep, hi, &mut rest[1..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_is_strictly_inside() {
        let a = Item::from_label(vec![10]);
        let b = Item::from_label(vec![20]);
        let m = between_items(&a, &b);
        assert!(a < m && m < b);
    }

    #[test]
    fn generate_increasing_is_sorted_and_distinct() {
        let iv = Interval::whole();
        let items = generate_increasing(&iv, 100);
        assert_eq!(items.len(), 100);
        for w in items.windows(2) {
            assert!(w[0] < w[1]);
        }
        for it in &items {
            assert!(iv.contains(it));
        }
    }

    #[test]
    fn generate_increasing_inside_tight_interval() {
        let a = Item::from_label(vec![7]);
        let b = Item::from_label(vec![7, 1]);
        let iv = Interval::open(a.clone(), b.clone());
        let items = generate_increasing(&iv, 64);
        for it in &items {
            assert!(*it > a && *it < b, "item escaped the interval");
        }
        for w in items.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn generated_labels_stay_short() {
        let iv = Interval::whole();
        let items = generate_increasing(&iv, 1024);
        let max_len = items.iter().map(|i| i.label().len()).max().unwrap();
        // Balanced subdivision: length is O(log n), certainly < 4 + log2 n.
        assert!(max_len <= 16, "labels unexpectedly long: {max_len}");
    }

    #[test]
    #[should_panic(expected = "between_items requires a < b")]
    fn between_rejects_unordered_endpoints() {
        let a = Item::from_label(vec![10]);
        between_items(&a, &a);
    }
}
