#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A continuous, unbounded, totally ordered universe of opaque items.
//!
//! The lower-bound proof of Cormode & Veselý (PODS'20) assumes a universe
//! that is *continuous*: any non-empty open interval contains an unbounded
//! number of items, so the adversary can always draw a fresh element
//! strictly between any two previously observed ones. The paper suggests
//! realising such a universe as "a large enough set of long incompressible
//! strings, ordered lexicographically".
//!
//! This crate implements exactly that: an [`Item`] is an immutable byte
//! string compared lexicographically, and [`between_labels`] produces a fresh
//! label strictly inside any open interval. Labels never end in a `0x00`
//! byte, which is the invariant that guarantees a strict in-between label
//! always exists (between `b"ab"` and `b"ab\0"` there is no byte string,
//! so trailing-zero labels are never minted).
//!
//! The only operations a consumer of [`Item`] gets are comparison,
//! equality, hashing and cloning — which is precisely the comparison-based
//! model of Definition 2.1 in the paper. Code that is generic over
//! `T: Ord` and is instantiated with `T = Item` is therefore
//! machine-checked to be comparison-based: it cannot average items, hash
//! them into buckets by value structure, or otherwise inspect them.
//!
//! # Example
//!
//! ```
//! use cqs_universe::{Interval, between_items, generate_increasing};
//!
//! let whole = Interval::whole();
//! let items = generate_increasing(&whole, 5);
//! assert!(items.windows(2).all(|w| w[0] < w[1]));
//!
//! // The universe is continuous: we can always go in between.
//! let mid = between_items(&items[1], &items[2]);
//! assert!(items[1] < mid && mid < items[2]);
//! ```

mod arena;
mod interval;
mod item;
mod label;
mod rungen;

pub use arena::{ids_exhausted, LabelArena};
pub use interval::{Endpoint, Interval};
pub use item::Item;
pub use label::{between_labels, label_in};
pub use rungen::RunGenerator;

/// Produces a fresh item strictly between `a` and `b`.
///
/// # Panics
///
/// Panics if `a >= b`; the open interval `(a, b)` must be non-empty,
/// which for this universe just means `a < b`.
pub fn between_items(a: &Item, b: &Item) -> Item {
    assert!(a < b, "between_items requires a < b");
    Item::from_label(between_labels(Some(a.label()), Some(b.label())))
}

/// Generates `n` strictly increasing fresh items inside the open interval.
///
/// The items are produced by balanced binary subdivision, so label length
/// grows only O(log n) rather than O(n) as naive repeated insertion after
/// the previous item would give. The whole run is interned through a
/// [`LabelArena`]: labels are generated first (raw bytes, in order),
/// then sealed into one shared chunk — so a run's items are contiguous
/// in memory and cost one chunk allocation instead of `n`.
pub fn generate_increasing(interval: &Interval, n: usize) -> Vec<Item> {
    let mut arena = LabelArena::new();
    generate_labels_into(interval, n, &mut arena);
    arena.seal()
}

/// Generates the raw labels of [`generate_increasing`] into `arena`
/// (same balanced subdivision, same byte-identical labels) without
/// sealing, so a caller batching several runs can share one chunk.
pub fn generate_labels_into(interval: &Interval, n: usize, arena: &mut LabelArena) {
    let lo = match interval.lo() {
        Endpoint::NegInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::PosInf => panic!("interval low endpoint cannot be +inf"),
    };
    let hi = match interval.hi() {
        Endpoint::PosInf => None,
        Endpoint::Finite(item) => Some(item.label()),
        Endpoint::NegInf => panic!("interval high endpoint cannot be -inf"),
    };
    // Validate the run's outer endpoints ONCE; the subdivision below
    // maintains the invariants by induction, so the per-label midpoint
    // calls can skip the O(label depth) re-checks.
    for side in [lo, hi].into_iter().flatten() {
        assert!(!side.is_empty(), "finite label must be non-empty");
        assert!(
            side.last().is_some_and(|b| *b != 0),
            "label must not end in 0x00"
        );
    }
    if let (Some(a), Some(b)) = (lo, hi) {
        assert!(a < b, "generate requires lo < hi, got {a:?} !< {b:?}");
    }
    // Midpoint buffer pool: the subdivision holds at most O(log n) mid
    // labels alive at once (one per recursion level), so a run of n
    // mints costs O(log n) buffer allocations instead of n.
    let mut pool: Vec<Vec<u8>> = Vec::new();
    fill_labels(lo, hi, n, arena, &mut pool);
}

/// [`generate_increasing`] with grouped chunk sealing: byte-identical
/// labels in the same order, but split across chunks of at most `group`
/// labels each (see [`LabelArena::seal_grouped_into`]). The implicit
/// stream representation feeds summaries through this entry point so a
/// retained item pins O(`group`) label bytes instead of a whole run.
pub fn generate_increasing_grouped(interval: &Interval, n: usize, group: usize) -> Vec<Item> {
    let mut arena = LabelArena::new();
    generate_labels_into(interval, n, &mut arena);
    let mut out = Vec::new();
    arena.seal_grouped_into(group, &mut out);
    out
}

/// Compile-time audit that items (and the endpoints and intervals built
/// from them) can be shared across the `cqs-bench` parallel sweep
/// pool's worker threads. The `sharding-send-sync` lint rule keeps
/// these lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit() {
    fn assert_send<T: Send + Sync>() {}
    assert_send::<Item>();
    assert_send::<Endpoint>();
    assert_send::<Interval>();
    // The shared arena handle: minted-run chunks (and the arena that
    // builds them) cross the parallel sweep pool inside Items and leaf
    // scratch state.
    assert_send::<LabelArena>();
}

/// Balanced subdivision over raw labels: the mid label splits `(lo, hi)`
/// and the halves recurse, pushing labels in increasing order. Mid
/// buffers are drawn from (and returned to) `pool` so the recursion
/// reuses one buffer per level.
fn fill_labels(
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    n: usize,
    arena: &mut LabelArena,
    pool: &mut Vec<Vec<u8>>,
) {
    if n == 0 {
        return;
    }
    let m = n / 2;
    let mut mid = pool.pop().unwrap_or_default();
    label::between_labels_into(lo, hi, &mut mid);
    fill_labels(lo, Some(&mid), m, arena, pool);
    arena.push_label(&mid);
    fill_labels(Some(&mid), hi, n - m - 1, arena, pool);
    pool.push(mid);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_is_strictly_inside() {
        let a = Item::from_label(vec![10]);
        let b = Item::from_label(vec![20]);
        let m = between_items(&a, &b);
        assert!(a < m && m < b);
    }

    #[test]
    fn generate_increasing_is_sorted_and_distinct() {
        let iv = Interval::whole();
        let items = generate_increasing(&iv, 100);
        assert_eq!(items.len(), 100);
        for w in items.windows(2) {
            assert!(w[0] < w[1]);
        }
        for it in &items {
            assert!(iv.contains(it));
        }
    }

    #[test]
    fn generate_increasing_inside_tight_interval() {
        let a = Item::from_label(vec![7]);
        let b = Item::from_label(vec![7, 1]);
        let iv = Interval::open(a.clone(), b.clone());
        let items = generate_increasing(&iv, 64);
        for it in &items {
            assert!(*it > a && *it < b, "item escaped the interval");
        }
        for w in items.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn generated_labels_stay_short() {
        let iv = Interval::whole();
        let items = generate_increasing(&iv, 1024);
        let max_len = items.iter().map(|i| i.label().len()).max().unwrap();
        // Balanced subdivision: length is O(log n), certainly < 4 + log2 n.
        assert!(max_len <= 16, "labels unexpectedly long: {max_len}");
    }

    #[test]
    #[should_panic(expected = "between_items requires a < b")]
    fn between_rejects_unordered_endpoints() {
        let a = Item::from_label(vec![10]);
        between_items(&a, &a);
    }

    #[test]
    fn grouped_generation_matches_single_chunk_generation() {
        let a = Item::from_label(vec![3]);
        let b = Item::from_label(vec![9, 9]);
        let iv = Interval::open(a, b);
        let plain = generate_increasing(&iv, 100);
        for group in [1usize, 7, 32, 100, 1000] {
            let grouped = generate_increasing_grouped(&iv, 100, group);
            assert_eq!(grouped.len(), plain.len());
            for (g, p) in grouped.iter().zip(&plain) {
                assert_eq!(g.label(), p.label(), "grouped sealing changed a label");
            }
        }
    }
}
