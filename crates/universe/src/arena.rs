//! Label arena: batch interning of minted labels into shared chunks.
//!
//! The adversary mints labels in *runs* — every leaf of the recursion
//! tree appends a strictly increasing batch of fresh items to each
//! stream. Before this module each label owned its own `Arc<[u8]>`
//! allocation, so a run of `m` labels cost `m` allocator round-trips
//! and scattered the label bytes across the heap; comparisons then paid
//! a pointer chase per operand into unrelated cache lines.
//!
//! [`LabelArena`] instead accumulates a run's labels into one
//! contiguous buffer and *seals* the run into a single shared chunk
//! (`Arc<[u8]>`): every [`Item`] of the run is a `(chunk, offset,
//! length)` slice of that chunk, so a leaf's labels — exactly the items
//! the summary and treap will compare against each other most often —
//! sit adjacent in memory. Sealing is the only copy; the arena keeps no
//! unsafe self-references (the workspace forbids `unsafe`), it simply
//! never hands out an item before its chunk is frozen.
//!
//! Sealing also assigns each item a fresh **arena id** (a `u32` from a
//! process-wide mint counter). Ids are globally unique across all
//! arenas and [`Item::from_label`] mints, and clones share their
//! original's id — so id equality proves label equality and replaces
//! the old `Arc::ptr_eq` fast path with a one-word compare that needs
//! no pointer chase. Ids are *never* observable through the comparison
//! API: they only ever short-circuit `Ord`/`Eq` toward the verdict the
//! label bytes would produce anyway, so mint order (which may vary
//! across thread interleavings of the parallel sweep) cannot influence
//! any comparison outcome, keeping runs byte-for-byte reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::item::Item;

/// Sentinel id carried by items minted after the 32-bit id space is
/// exhausted. Two `NO_ID` items are *not* assumed equal — they fall
/// through to the byte-wise comparison — so exhaustion only costs the
/// fast path, never correctness.
pub(crate) const NO_ID: u32 = u32::MAX;

/// Process-wide mint counter. 64-bit so `fetch_add` can never wrap back
/// into the valid 32-bit id range; everything past `NO_ID` saturates to
/// the sentinel.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Mints a globally unique arena id (or [`NO_ID`] on exhaustion).
///
/// `Relaxed` suffices: ids carry no ordering information — uniqueness
/// (guaranteed by the atomic read-modify-write) is the only property
/// the comparison fast path relies on.
pub(crate) fn mint_id() -> u32 {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    if id >= u64::from(NO_ID) {
        NO_ID
    } else {
        id as u32
    }
}

/// Whether the process-wide 32-bit id space has run out: every item
/// minted from now on carries the [`NO_ID`] sentinel. Comparisons stay
/// correct (they fall through to the byte-wise path), but callers that
/// promise typed errors instead of silent degradation — the adversary's
/// panic-free driver — check this after a minting burst and surface a
/// `UniverseExhausted` error rather than silently losing the fast path
/// and the id-keyed equivalence memo.
pub fn ids_exhausted() -> bool {
    NEXT_ID.load(Ordering::Relaxed) >= u64::from(NO_ID)
}

/// A batch interner for label runs.
///
/// Push the run's labels in stream order, then [`seal`](Self::seal) the
/// run into items backed by one shared chunk. The arena is reusable:
/// sealing drains it (keeping its buffers' capacity), so one arena per
/// adversary serves every leaf without fresh allocations once the
/// high-water mark is reached.
///
/// ## Ownership and lifetime contract
///
/// The arena owns the pending bytes until `seal`; after `seal` the
/// chunk is owned jointly by the returned items (plain `Arc`
/// reference counting — the chunk outlives the arena and is freed when
/// the last item drops). A chunk is immutable from the moment any item
/// can see it, which is what lets items alias it without `unsafe`.
#[derive(Default)]
pub struct LabelArena {
    buf: Vec<u8>,
    ends: Vec<usize>,
}

impl LabelArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one label to the pending run.
    pub fn push_label(&mut self, label: &[u8]) {
        self.buf.extend_from_slice(label);
        self.ends.push(self.buf.len());
    }

    /// Number of labels in the pending (unsealed) run.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the pending run is empty.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Seals the pending run into one shared chunk and returns its
    /// items, in push order. Resets the arena for the next run.
    pub fn seal(&mut self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.ends.len());
        self.seal_into(&mut out);
        out
    }

    /// [`seal`](Self::seal) into a caller-owned buffer (appends).
    pub fn seal_into(&mut self, out: &mut Vec<Item>) {
        let chunk: Arc<[u8]> = Arc::from(self.buf.as_slice());
        out.reserve(self.ends.len());
        let mut start = 0usize;
        for &end in &self.ends {
            out.push(Item::from_chunk(Arc::clone(&chunk), start, end));
            start = end;
        }
        self.buf.clear();
        self.ends.clear();
    }

    /// [`seal_into`](Self::seal_into), but splitting the run across
    /// chunks of at most `group` labels each. Label bytes and push order
    /// are identical to single-chunk sealing — only the chunk boundaries
    /// differ, and those are invisible to every comparison.
    ///
    /// This is the sealing mode of the implicit stream representation:
    /// there, a run's items are *transient* (fed to the summary, then
    /// dropped) and a single summary-retained item would otherwise pin
    /// the whole run's chunk alive. With grouped sealing a retained item
    /// pins at most `group` labels, keeping resident label bytes
    /// proportional to the summary's stored size rather than to N.
    ///
    /// # Panics
    ///
    /// Panics if `group == 0`.
    pub fn seal_grouped_into(&mut self, group: usize, out: &mut Vec<Item>) {
        assert!(group > 0, "seal group must be non-empty");
        out.reserve(self.ends.len());
        let mut start = 0usize;
        for ends in self.ends.chunks(group) {
            let Some(&chunk_end) = ends.last() else {
                continue;
            };
            let chunk: Arc<[u8]> = Arc::from(&self.buf[start..chunk_end]);
            let base = start;
            for &end in ends {
                out.push(Item::from_chunk(
                    Arc::clone(&chunk),
                    start - base,
                    end - base,
                ));
                start = end;
            }
        }
        self.buf.clear();
        self.ends.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_items_share_one_chunk_and_keep_order() {
        let mut arena = LabelArena::new();
        arena.push_label(&[1]);
        arena.push_label(&[2, 2]);
        arena.push_label(&[3, 3, 3]);
        assert_eq!(arena.len(), 3);
        let items = arena.seal();
        assert!(arena.is_empty());
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].label(), &[1]);
        assert_eq!(items[1].label(), &[2, 2]);
        assert_eq!(items[2].label(), &[3, 3, 3]);
        assert!(items[0] < items[1] && items[1] < items[2]);
    }

    #[test]
    fn arena_is_reusable_after_seal() {
        let mut arena = LabelArena::new();
        arena.push_label(&[9]);
        let first = arena.seal();
        arena.push_label(&[7]);
        let second = arena.seal();
        assert_eq!(first[0].label(), &[9]);
        assert_eq!(second[0].label(), &[7]);
        assert!(second[0] < first[0]);
    }

    #[test]
    fn minted_ids_are_distinct_but_clones_share() {
        let mut arena = LabelArena::new();
        arena.push_label(&[5]);
        arena.push_label(&[6]);
        let items = arena.seal();
        // Distinct mints never compare equal unless the bytes agree.
        assert_ne!(items[0], items[1]);
        let c = items[0].clone();
        assert_eq!(items[0], c);
        assert_eq!(items[0].cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn empty_run_seals_to_no_items() {
        let mut arena = LabelArena::new();
        assert!(arena.seal().is_empty());
    }

    #[test]
    fn grouped_sealing_preserves_labels_and_order() {
        let labels: Vec<Vec<u8>> = (1u8..=11).map(|b| vec![b, b]).collect();
        for group in [1usize, 2, 3, 4, 11, 64] {
            let mut arena = LabelArena::new();
            for l in &labels {
                arena.push_label(l);
            }
            let mut grouped = Vec::new();
            arena.seal_grouped_into(group, &mut grouped);
            assert!(arena.is_empty());
            assert_eq!(grouped.len(), labels.len());
            for (it, l) in grouped.iter().zip(&labels) {
                assert_eq!(it.label(), l.as_slice());
            }
            assert!(grouped.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn id_space_is_not_exhausted_under_test_loads() {
        // The typed-exhaustion probe itself: it must read false for any
        // realistic test-scale mint volume.
        let _ = LabelArena::new();
        assert!(!crate::ids_exhausted());
    }

    #[test]
    fn interned_equals_individually_minted() {
        let mut arena = LabelArena::new();
        arena.push_label(&[4, 4]);
        let interned = arena.seal().pop().unwrap();
        let single = Item::from_label(vec![4, 4]);
        // Different chunks, different ids — equality must come from the
        // label bytes alone.
        assert_eq!(interned, single);
        assert_eq!(interned.cmp(&single), std::cmp::Ordering::Equal);
    }
}
