//! Minimal JSON reading/writing for the perf-baseline artifacts.
//!
//! The workspace is deliberately dependency-free (no serde), and the
//! only JSON the harness needs is the flat `BENCH_*.json` schema:
//! objects, arrays, strings, numbers, booleans. This module implements
//! exactly that — a deterministic writer (object keys keep insertion
//! order) and a strict recursive-descent parser used both by `--merge`
//! (append runs to an existing file) and by the CI smoke step's
//! `--verify` mode.

use std::fmt::Write as _;

/// A JSON value. Objects preserve key order so re-rendering a parsed
/// file is stable under version control.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always rendered via `f64`; integers stay integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    it.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    // Integral values render without a fraction; exact-zero fract is the
    // correct test here, not an epsilon. cqs-lint: allow(float-eq)
    if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: exactly one value, no trailing
/// garbage, no comments.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        let ch = char::from_u32(code).ok_or("bad \\u codepoint")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("cqs-bench/v1".into())),
            (
                "runs".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("k".into(), Json::Num(12.0)),
                    ("items_per_sec".into(), Json::Num(123456.75)),
                    ("ok".into(), Json::Bool(true)),
                    ("note".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("reparse");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("cqs-bench/v1")
        );
        let runs = back.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs[0].get("k").and_then(Json::as_f64), Some(12.0));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(262144.0).render(), "262144\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd".into());
        assert_eq!(parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
