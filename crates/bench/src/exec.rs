//! Deterministic parallel sweep executor.
//!
//! Every sweep in this workspace is a grid of independent cells (one
//! adversary run, one fault-matrix row, one bound evaluation). This
//! module fans a flattened cell grid out over a scoped `std::thread`
//! worker pool — no channels, no external crates — while keeping the
//! one property the experiment tables and `results/*.csv` mirrors rely
//! on: **results come back in input order**, byte-for-byte identical to
//! a serial run, regardless of completion order.
//!
//! Design (see DESIGN.md "Parallel sweep executor"):
//!
//! * **Work index, not channels.** Workers claim cells by bumping one
//!   shared `AtomicUsize` over the flattened grid. There is no work
//!   queue to build, no sender/receiver pairing to tear down, and the
//!   claim order is irrelevant to the output: each worker writes its
//!   result into the slot of the cell it claimed.
//! * **Per-index slots.** Results land in a `Vec` of per-cell mutexed
//!   slots, so the returned `Vec` is in input order by construction and
//!   two workers never contend on the same slot.
//! * **Panic isolation.** Each cell runs under `catch_unwind`; a
//!   panicking cell degrades to [`CellOutcome::Panicked`] (which the
//!   sweeps map onto PR 3's `RunVerdict` taxonomy) instead of tearing
//!   down the whole sweep.
//! * **`jobs == 1` is the serial path.** No threads are spawned; cells
//!   run in input order on the calling thread, which reproduces the
//!   pre-parallel binaries' behaviour exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What happened to one cell of the grid.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// The cell's closure returned normally.
    Done(R),
    /// The cell's closure panicked; the payload rendered as text.
    Panicked(String),
}

impl<R> CellOutcome<R> {
    /// The result, if the cell completed.
    pub fn as_done(&self) -> Option<&R> {
        match self {
            CellOutcome::Done(r) => Some(r),
            CellOutcome::Panicked(_) => None,
        }
    }

    /// Consumes the outcome, yielding the result if the cell completed.
    pub fn into_done(self) -> Option<R> {
        match self {
            CellOutcome::Done(r) => Some(r),
            CellOutcome::Panicked(_) => None,
        }
    }
}

/// A completed cell, as seen by the progress callback.
pub struct Completion<'a, R> {
    /// Input-order index of the cell that just finished.
    pub index: usize,
    /// How many cells have finished so far (including this one).
    pub finished: usize,
    /// Total number of cells in the grid.
    pub total: usize,
    /// The cell's outcome.
    pub outcome: &'a CellOutcome<R>,
    /// Wall-clock time this cell took.
    pub elapsed: Duration,
}

/// The number of workers used when `--jobs` is not given: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses the value of a `--jobs` flag: a positive worker count, or `0`
/// meaning "auto" (available parallelism).
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(0) => Ok(default_jobs()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs: expected a non-negative integer, got {v}")),
    }
}

/// Runs `run(index, &cell)` for every cell of the grid on `jobs` worker
/// threads and returns the outcomes **in input order**.
///
/// `report` is invoked once per completed cell (under the cell's slot
/// lock, so invocations never interleave); sweeps use it to print the
/// coarse progress line. With `jobs <= 1` everything runs on the
/// calling thread in input order — the byte-for-byte serial path.
pub fn run_cells<T, R, F, P>(cells: &[T], jobs: usize, run: F, report: P) -> Vec<CellOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    P: Fn(&Completion<'_, R>) + Sync,
{
    let total = cells.len();
    let finished = AtomicUsize::new(0);
    let one = |i: usize| -> CellOutcome<R> {
        let started = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(i, &cells[i]))) {
            Ok(r) => CellOutcome::Done(r),
            Err(payload) => CellOutcome::Panicked(panic_message(payload.as_ref())),
        };
        report(&Completion {
            index: i,
            finished: finished.fetch_add(1, Ordering::Relaxed) + 1,
            total,
            outcome: &outcome,
            elapsed: started.elapsed(),
        });
        outcome
    };

    let jobs = jobs.clamp(1, total.max(1));
    if jobs <= 1 {
        return (0..total).map(one).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutcome<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let outcome = one(i);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(outcome),
                    Err(poisoned) => *poisoned.into_inner() = Some(outcome),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Unreachable in practice (every claimed index stores before
            // the scope joins), but degrade rather than panic.
            inner.unwrap_or_else(|| CellOutcome::Panicked("cell result missing".into()))
        })
        .collect()
}

/// Renders a caught panic payload (`&str` or `String`, the two shapes
/// `panic!` produces) as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Items-per-second over a wall-clock duration (progress lines).
pub fn items_per_sec(items: u64, elapsed: Duration) -> f64 {
    items as f64 / elapsed.as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn silent<R>(_: &Completion<'_, R>) {}

    #[test]
    fn results_come_back_in_input_order() {
        let cells: Vec<u64> = (0..64).collect();
        // Make late cells finish first so completion order differs from
        // input order under any parallelism.
        let out = run_cells(
            &cells,
            8,
            |_, &c| {
                std::thread::sleep(Duration::from_micros(2 * (64 - c)));
                c * 3
            },
            silent,
        );
        let values: Vec<u64> = out.into_iter().map(|o| o.into_done().unwrap()).collect();
        let expected: Vec<u64> = (0..64).map(|c| c * 3).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let cells: Vec<u64> = (0..40).collect();
        let run = |_: usize, &c: &u64| c.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial: Vec<_> = run_cells(&cells, 1, run, silent)
            .into_iter()
            .map(|o| o.into_done().unwrap())
            .collect();
        let parallel: Vec<_> = run_cells(&cells, 4, run, silent)
            .into_iter()
            .map(|o| o.into_done().unwrap())
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panicking_cell_is_isolated() {
        // Silence the default hook: the panic below is the point.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cells: Vec<u64> = (0..8).collect();
        let out = run_cells(
            &cells,
            4,
            |_, &c| {
                if c == 3 {
                    panic!("boom at {c}");
                }
                c
            },
            silent,
        );
        std::panic::set_hook(hook);
        for (i, o) in out.iter().enumerate() {
            match o {
                CellOutcome::Done(v) => {
                    assert_ne!(i, 3);
                    assert_eq!(*v, i as u64);
                }
                CellOutcome::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("boom at 3"), "{msg}");
                }
            }
        }
    }

    #[test]
    fn progress_reports_every_cell_once() {
        let cells: Vec<u64> = (0..16).collect();
        let seen = Mutex::new(vec![0usize; 16]);
        let finished_max = AtomicUsize::new(0);
        run_cells(
            &cells,
            4,
            |_, &c| c,
            |c: &Completion<'_, u64>| {
                seen.lock().unwrap()[c.index] += 1;
                finished_max.fetch_max(c.finished, Ordering::Relaxed);
                assert_eq!(c.total, 16);
            },
        );
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
        assert_eq!(finished_max.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs("3"), Ok(3));
        assert_eq!(parse_jobs("0"), Ok(default_jobs()));
        assert!(parse_jobs("-1").is_err());
        assert!(parse_jobs("many").is_err());
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn empty_grid_is_fine() {
        let cells: Vec<u64> = Vec::new();
        let out = run_cells(&cells, 4, |_, &c| c, silent);
        assert!(out.is_empty());
    }
}
