//! Shared sweep grids: the (ε, k, target) cell grids the experiment
//! binaries fan out over the [`crate::exec`] worker pool.
//!
//! The Theorem 2.2 sweep lives here (rather than inside its binary) so
//! `tests/parallel_determinism.rs` can assert that `--jobs 1` and
//! `--jobs N` produce byte-identical tables without spawning processes
//! or touching the committed `results/` CSVs.

use std::ops::RangeInclusive;

use cqs_core::{AdversaryReport, Eps, StreamRepr};
use cqs_snapshot::{Decoder, Encoder, RestoreError};
use cqs_streams::Table;

use crate::checkpoint::{
    grid_fingerprint, run_cells_checkpointed, CheckpointConfig, CheckpointedRun, CkptOutcome,
    CkptProgress, ResumeInfo,
};
use crate::exec::{items_per_sec, run_cells, CellOutcome, Completion};
use crate::{f1, try_attack_repr, Target};

/// One cell of the Theorem 2.2 sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct Thm22Cell {
    /// Approximation guarantee.
    pub eps: Eps,
    /// Recursion depth (stream length (1/ε)·2^k).
    pub k: u32,
    /// Summary under attack.
    pub target: Target,
    /// Stream representation the adversary indexes with: the classic
    /// grids materialize every item; the large-N grids run
    /// interval-compressed ([`StreamRepr::Implicit`]) so memory stays
    /// sublinear in N.
    pub repr: StreamRepr,
}

/// Flattens an (inverse-ε, k, target) product into the cell grid, in
/// the same nesting order the serial loops used (ε outermost, target
/// innermost) so the table row order is unchanged.
pub fn thm22_grid(invs: &[u64], ks: RangeInclusive<u32>, targets: &[Target]) -> Vec<Thm22Cell> {
    thm22_grid_repr(invs, ks, targets, StreamRepr::Materialized)
}

/// [`thm22_grid`] with an explicit stream representation on every cell.
pub fn thm22_grid_repr(
    invs: &[u64],
    ks: RangeInclusive<u32>,
    targets: &[Target],
    repr: StreamRepr,
) -> Vec<Thm22Cell> {
    let mut cells = Vec::new();
    for &inv in invs {
        let eps = Eps::from_inverse(inv);
        for k in ks.clone() {
            for &target in targets {
                cells.push(Thm22Cell {
                    eps,
                    k,
                    target,
                    repr,
                });
            }
        }
    }
    cells
}

/// The full grid the committed `results/thm22_lower_bound_sweep.csv`
/// is generated from.
pub fn thm22_full_grid() -> Vec<Thm22Cell> {
    thm22_grid(
        &[32, 64, 128],
        4..=9,
        &[Target::Gk, Target::GkGreedy, Target::KllFixed],
    )
}

/// A small grid for CI smoke runs (seconds, not minutes).
pub fn thm22_smoke_grid() -> Vec<Thm22Cell> {
    thm22_grid(&[16], 4..=6, &[Target::Gk, Target::GkGreedy])
}

/// The large-N grid: interval-compressed cells climbing to
/// N = 1024·2¹⁷ ≈ 1.34×10⁸ — two decades past where the materialized
/// treap's per-item arena tops out. Three k values at fixed ε trace the
/// Ω((1/ε)·log εN) shape (peak |I| grows linearly in k); run it with
/// `--resume` so the ~10⁸-item final cell survives interruption.
pub fn thm22_large_n_grid() -> Vec<Thm22Cell> {
    thm22_grid_repr(&[1024], 10..=17, &[Target::Gk], StreamRepr::Implicit)
        .into_iter()
        .filter(|c| matches!(c.k, 10 | 14 | 17))
        .collect()
}

/// One N ≈ 1.34×10⁸ interval-compressed cell — the `ci.sh --large-n`
/// crash/resume leg and the jobs-determinism smoke test share it.
pub fn thm22_large_n_smoke_grid() -> Vec<Thm22Cell> {
    thm22_grid_repr(&[1024], 17..=17, &[Target::Gk], StreamRepr::Implicit)
}

/// Outcome of a Theorem 2.2 sweep, in input-cell order.
pub struct Thm22Sweep {
    /// One row per successfully attacked cell.
    pub table: Table,
    /// Whether every *correct* run met the Theorem 2.2 space bound.
    pub all_ok: bool,
    /// Skip-and-record log for cells whose run errored or panicked.
    pub skipped: Vec<String>,
}

/// Runs the grid on `jobs` workers. Cell results are assembled in input
/// order, so the table (and its CSV mirror) is identical for every
/// `jobs`. With `progress` set, a coarse per-cell line (cell id,
/// verdict, items/s) goes to stderr as each cell completes.
pub fn thm22_sweep(cells: &[Thm22Cell], jobs: usize, progress: bool) -> Thm22Sweep {
    let report = |c: &Completion<'_, Result<AdversaryReport, String>>| {
        if !progress {
            return;
        }
        let (verdict, items) = match c.outcome {
            CellOutcome::Done(Ok(rep)) => ("completed", 2 * rep.n),
            CellOutcome::Done(Err(_)) => ("skipped", 0),
            CellOutcome::Panicked(_) => ("panicked", 0),
        };
        progress_line(
            cells, c.index, c.finished, c.total, verdict, items, c.elapsed,
        );
    };
    let outcomes = run_cells(
        cells,
        jobs,
        |_, cell| try_attack_repr(cell.eps, cell.k, cell.target, cell.repr),
        report,
    );
    thm22_table(cells, outcomes)
}

/// One coarse stderr progress line, shared by the plain and
/// checkpointed sweeps so both render identically.
fn progress_line(
    cells: &[Thm22Cell],
    index: usize,
    finished: usize,
    total: usize,
    verdict: &str,
    items: u64,
    elapsed: std::time::Duration,
) {
    let Some(cell) = cells.get(index) else {
        return;
    };
    eprintln!(
        "[thm22 {}/{}] eps={} k={} {} {} {:.0} items/s ({:.2}s)",
        finished,
        total,
        cell.eps,
        cell.k,
        cell.target.name(),
        verdict,
        items_per_sec(items, elapsed),
        elapsed.as_secs_f64()
    );
}

/// Renders cell outcomes into the sweep table — the single table
/// builder for both the plain and the checkpointed sweep, so a resumed
/// run cannot drift from an uninterrupted one in formatting.
fn thm22_table(
    cells: &[Thm22Cell],
    outcomes: Vec<CellOutcome<Result<AdversaryReport, String>>>,
) -> Thm22Sweep {
    let mut table = Table::new(&[
        "eps",
        "k",
        "N",
        "target",
        "gap",
        "ceil(2epsN)",
        "peak|I|",
        "thm2.2",
        "peak/bound",
        "gk-upper",
        "claim1-viol",
        "lemma52-viol",
        "indist",
    ]);
    let mut all_ok = true;
    let mut skipped = Vec::new();
    for (cell, outcome) in cells.iter().zip(outcomes) {
        // Skip-and-record: one crashing or model-violating config must
        // not abort the remaining cells; a panic that escaped the
        // guarded driver is recorded the same way.
        let rep = match outcome {
            CellOutcome::Done(Ok(rep)) => rep,
            CellOutcome::Done(Err(e)) => {
                skipped.push(format!(
                    "eps={} k={} {}: {e}",
                    cell.eps,
                    cell.k,
                    cell.target.name()
                ));
                continue;
            }
            CellOutcome::Panicked(msg) => {
                skipped.push(format!(
                    "eps={} k={} {}: cell panicked: {msg} [summary-panicked]",
                    cell.eps,
                    cell.k,
                    cell.target.name()
                ));
                continue;
            }
        };
        let gk_upper = cell.eps.inverse() as f64 * (cell.k as f64 + 1.0);
        let ratio = rep.max_stored as f64 / rep.theorem22_bound;
        let correct = rep.final_gap <= rep.gap_ceiling;
        let met = rep.max_stored as f64 >= rep.theorem22_bound;
        if correct && !met {
            all_ok = false;
        }
        table.row(&[
            &cell.eps.to_string(),
            &cell.k.to_string(),
            &rep.n.to_string(),
            &cell.target.name(),
            &rep.final_gap.to_string(),
            &rep.gap_ceiling.to_string(),
            &rep.max_stored.to_string(),
            &f1(rep.theorem22_bound),
            &f1(ratio),
            &f1(gk_upper),
            &rep.claim1_violations.to_string(),
            &rep.lemma52_violations.to_string(),
            &rep.equivalence_ok.to_string(),
        ]);
    }
    Thm22Sweep {
        table,
        all_ok,
        skipped,
    }
}

/// Intern table for [`AdversaryReport::summary_name`], which is a
/// `&'static str`: checkpoint records store an index into this list so
/// restore can hand back the same static string. Append-only — index
/// positions are part of the checkpoint format.
const SUMMARY_NAMES: &[&str] = &[
    "gk",
    "gk-greedy",
    "gk-capped",
    "kll",
    "mrl",
    "ckms",
    "reservoir",
    "exact",
    "decimated",
    "summary",
];

/// Encodes one cell result for the sweep checkpoint. Floats travel as
/// IEEE-754 bit patterns, ε as its exact integer inverse — the decoded
/// report renders byte-identical table text. Returns `None` (skip
/// persistence, replay on resume) for a summary name outside the
/// intern table.
pub fn encode_thm22_result(res: &Result<AdversaryReport, String>) -> Option<Vec<u8>> {
    let mut e = Encoder::new();
    match res {
        Err(msg) => {
            e.put_u8(0);
            e.put_str(msg);
        }
        Ok(rep) => {
            let name = SUMMARY_NAMES.iter().position(|&n| n == rep.summary_name)?;
            e.put_u8(1);
            e.put_u64(rep.eps.inverse());
            e.put_u32(rep.k);
            e.put_u64(rep.n);
            e.put_u64(rep.final_gap);
            e.put_u64(rep.gap_ceiling);
            e.put_u64(rep.stored_final as u64);
            e.put_u64(rep.max_stored as u64);
            e.put_f64(rep.space_gap_rhs_at_gap);
            e.put_f64(rep.theorem22_bound);
            e.put_u64(rep.claim1_violations as u64);
            e.put_u64(rep.lemma52_violations as u64);
            e.put_bool(rep.equivalence_ok);
            e.put_u64(rep.max_label_depth as u64);
            e.put_u32(name as u32);
        }
    }
    Some(e.into_bytes())
}

/// Decodes a checkpoint record written by [`encode_thm22_result`].
/// Every malformation is a typed [`RestoreError`]; the checkpoint layer
/// responds by replaying the cell.
pub fn decode_thm22_result(bytes: &[u8]) -> Result<Result<AdversaryReport, String>, RestoreError> {
    fn malformed(detail: impl Into<String>) -> RestoreError {
        RestoreError::Malformed {
            section: "CELL".to_string(),
            detail: detail.into(),
        }
    }
    fn to_usize(x: u64) -> Result<usize, RestoreError> {
        usize::try_from(x).map_err(|_| malformed("count overflows usize"))
    }
    let mut d = Decoder::new(bytes, "CELL");
    let res = match d.take_u8()? {
        0 => Err(d.take_str()?.to_string()),
        1 => {
            let inv = d.take_u64()?;
            if inv == 0 {
                return Err(malformed("zero 1/eps"));
            }
            let k = d.take_u32()?;
            let n = d.take_u64()?;
            let final_gap = d.take_u64()?;
            let gap_ceiling = d.take_u64()?;
            let stored_final = to_usize(d.take_u64()?)?;
            let max_stored = to_usize(d.take_u64()?)?;
            let space_gap_rhs_at_gap = d.take_f64()?;
            let theorem22_bound = d.take_f64()?;
            let claim1_violations = to_usize(d.take_u64()?)?;
            let lemma52_violations = to_usize(d.take_u64()?)?;
            let equivalence_ok = d.take_bool()?;
            let max_label_depth = to_usize(d.take_u64()?)?;
            let name_idx = to_usize(u64::from(d.take_u32()?))?;
            let summary_name = SUMMARY_NAMES
                .get(name_idx)
                .copied()
                .ok_or_else(|| malformed(format!("unknown summary-name index {name_idx}")))?;
            Ok(AdversaryReport {
                eps: Eps::from_inverse(inv),
                k,
                n,
                final_gap,
                gap_ceiling,
                stored_final,
                max_stored,
                space_gap_rhs_at_gap,
                theorem22_bound,
                claim1_violations,
                lemma52_violations,
                equivalence_ok,
                max_label_depth,
                summary_name,
            })
        }
        other => return Err(malformed(format!("unknown result tag {other}"))),
    };
    d.finish()?;
    Ok(res)
}

/// Stable fingerprint of a Theorem 2.2 grid, binding a checkpoint to
/// the exact (ε, k, target, repr) cells in order. Materialized cells
/// keep the historical fingerprint text (old checkpoints stay
/// restorable); only implicit cells carry the repr marker.
pub fn thm22_fingerprint(cells: &[Thm22Cell]) -> u64 {
    grid_fingerprint(cells.iter().map(|c| match c.repr {
        StreamRepr::Materialized => {
            format!("thm22 eps={} k={} {}", c.eps, c.k, c.target.name())
        }
        StreamRepr::Implicit => format!(
            "thm22 eps={} k={} {} repr=implicit",
            c.eps,
            c.k,
            c.target.name()
        ),
    }))
}

/// How a checkpointed Theorem 2.2 sweep ended.
pub enum Thm22SweepRun {
    /// All cells accounted for; the table is identical to an
    /// uninterrupted [`thm22_sweep`] over the same grid.
    Complete(Thm22Sweep),
    /// An injected in-process halt tripped before the grid finished.
    Halted {
        /// Cells with persisted outcomes.
        completed: usize,
    },
}

/// [`thm22_sweep`] with crash recovery: progress persists to
/// `cfg.path` after every completed cell, and a rerun reuses every
/// intact stored result. The returned table is built by the same
/// renderer as the plain sweep, so crash/resume sequences under any
/// `jobs` produce byte-identical CSV.
pub fn thm22_sweep_checkpointed(
    cells: &[Thm22Cell],
    jobs: usize,
    progress: bool,
    cfg: &CheckpointConfig,
) -> (Thm22SweepRun, ResumeInfo) {
    let report = |c: &CkptProgress<'_, Result<AdversaryReport, String>>| {
        if !progress {
            return;
        }
        let (verdict, items) = match &c.outcome {
            CkptOutcome::Done(Ok(rep)) => ("completed", 2 * rep.n),
            CkptOutcome::Done(Err(_)) => ("skipped", 0),
            CkptOutcome::Panicked(_) => ("panicked", 0),
            CkptOutcome::Skipped => ("halted", 0),
        };
        progress_line(
            cells, c.index, c.finished, c.total, verdict, items, c.elapsed,
        );
    };
    let sweep = run_cells_checkpointed(
        cells,
        jobs,
        cfg,
        thm22_fingerprint(cells),
        |_, cell| try_attack_repr(cell.eps, cell.k, cell.target, cell.repr),
        encode_thm22_result,
        decode_thm22_result,
        report,
    );
    let run = match sweep.run {
        CheckpointedRun::Complete(outcomes) => {
            Thm22SweepRun::Complete(thm22_table(cells, outcomes))
        }
        CheckpointedRun::Halted { completed } => Thm22SweepRun::Halted { completed },
    };
    (run, sweep.resume)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_matches_serial_nesting() {
        let cells = thm22_grid(&[8, 16], 3..=4, &[Target::Gk, Target::GkGreedy]);
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].eps.inverse(), 8);
        assert_eq!(cells[0].k, 3);
        assert_eq!(cells[0].target, Target::Gk);
        assert_eq!(cells[1].target, Target::GkGreedy);
        assert_eq!(cells[2].k, 4);
        assert_eq!(cells[4].eps.inverse(), 16);
    }

    #[test]
    fn tiny_sweep_produces_rows_in_cell_order() {
        let cells = thm22_grid(&[8], 3..=3, &[Target::Gk, Target::GkGreedy]);
        let sweep = thm22_sweep(&cells, 2, false);
        assert!(sweep.skipped.is_empty(), "{:?}", sweep.skipped);
        let csv = sweep.table.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("gk"), "{csv}");
        assert!(rows[1].contains("gk-greedy"), "{csv}");
    }

    #[test]
    fn thm22_codec_round_trips_reports_and_errors() {
        let cells = thm22_grid(&[8], 3..=3, &[Target::Gk]);
        let res = try_attack_repr(cells[0].eps, cells[0].k, cells[0].target, cells[0].repr);
        let bytes = encode_thm22_result(&res).expect("known summary name");
        let back = decode_thm22_result(&bytes).unwrap();
        match (&res, &back) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.summary_name, b.summary_name);
                assert_eq!(a.eps.inverse(), b.eps.inverse());
                assert_eq!(
                    (a.k, a.n, a.final_gap, a.gap_ceiling),
                    (b.k, b.n, b.final_gap, b.gap_ceiling)
                );
                assert_eq!(
                    (a.stored_final, a.max_stored),
                    (b.stored_final, b.max_stored)
                );
                assert_eq!(a.theorem22_bound.to_bits(), b.theorem22_bound.to_bits());
                assert_eq!(
                    a.space_gap_rhs_at_gap.to_bits(),
                    b.space_gap_rhs_at_gap.to_bits()
                );
                assert_eq!(
                    (
                        a.claim1_violations,
                        a.lemma52_violations,
                        a.equivalence_ok,
                        a.max_label_depth
                    ),
                    (
                        b.claim1_violations,
                        b.lemma52_violations,
                        b.equivalence_ok,
                        b.max_label_depth
                    )
                );
            }
            _ => panic!("adversary outcome shape changed across the codec"),
        }

        let err: Result<AdversaryReport, String> = Err("fault injected".into());
        let bytes = encode_thm22_result(&err).expect("errors always encode");
        match decode_thm22_result(&bytes).unwrap() {
            Err(msg) => assert_eq!(msg, "fault injected"),
            Ok(_) => panic!("error record decoded as a report"),
        }

        // A truncated record is a typed corruption, not a panic.
        assert!(decode_thm22_result(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn checkpointed_sweep_halt_resume_matches_uninterrupted_csv() {
        use crate::checkpoint::CrashPolicy;

        let cells = thm22_grid(&[8], 3..=4, &[Target::Gk, Target::GkGreedy]);
        let baseline = thm22_sweep(&cells, 1, false).table.to_csv();
        for jobs in [1usize, 4] {
            let dir =
                std::env::temp_dir().join(format!("cqs-thm22-ckpt-{jobs}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = CheckpointConfig::in_dir(&dir, "thm22");
            cfg.crash = CrashPolicy::Halt(2);
            let (first, _) = thm22_sweep_checkpointed(&cells, jobs, false, &cfg);
            if jobs == 1 {
                // Serial order guarantees the halt trips mid-grid.
                assert!(matches!(first, Thm22SweepRun::Halted { completed: 2 }));
            }
            cfg.crash = CrashPolicy::None;
            let (second, resume) = thm22_sweep_checkpointed(&cells, jobs, false, &cfg);
            let Thm22SweepRun::Complete(sweep) = second else {
                panic!("resumed sweep did not complete");
            };
            assert!(resume.reused >= 2, "reused={}", resume.reused);
            assert!(sweep.skipped.is_empty(), "{:?}", sweep.skipped);
            assert_eq!(
                sweep.table.to_csv(),
                baseline,
                "resumed CSV diverged at jobs={jobs}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
