//! Shared sweep grids: the (ε, k, target) cell grids the experiment
//! binaries fan out over the [`crate::exec`] worker pool.
//!
//! The Theorem 2.2 sweep lives here (rather than inside its binary) so
//! `tests/parallel_determinism.rs` can assert that `--jobs 1` and
//! `--jobs N` produce byte-identical tables without spawning processes
//! or touching the committed `results/` CSVs.

use std::ops::RangeInclusive;

use cqs_core::Eps;
use cqs_streams::Table;

use crate::exec::{items_per_sec, run_cells, CellOutcome, Completion};
use crate::{f1, try_attack, Target};

/// One cell of the Theorem 2.2 sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct Thm22Cell {
    /// Approximation guarantee.
    pub eps: Eps,
    /// Recursion depth (stream length (1/ε)·2^k).
    pub k: u32,
    /// Summary under attack.
    pub target: Target,
}

/// Flattens an (inverse-ε, k, target) product into the cell grid, in
/// the same nesting order the serial loops used (ε outermost, target
/// innermost) so the table row order is unchanged.
pub fn thm22_grid(invs: &[u64], ks: RangeInclusive<u32>, targets: &[Target]) -> Vec<Thm22Cell> {
    let mut cells = Vec::new();
    for &inv in invs {
        let eps = Eps::from_inverse(inv);
        for k in ks.clone() {
            for &target in targets {
                cells.push(Thm22Cell { eps, k, target });
            }
        }
    }
    cells
}

/// The full grid the committed `results/thm22_lower_bound_sweep.csv`
/// is generated from.
pub fn thm22_full_grid() -> Vec<Thm22Cell> {
    thm22_grid(
        &[32, 64, 128],
        4..=9,
        &[Target::Gk, Target::GkGreedy, Target::KllFixed],
    )
}

/// A small grid for CI smoke runs (seconds, not minutes).
pub fn thm22_smoke_grid() -> Vec<Thm22Cell> {
    thm22_grid(&[16], 4..=6, &[Target::Gk, Target::GkGreedy])
}

/// Outcome of a Theorem 2.2 sweep, in input-cell order.
pub struct Thm22Sweep {
    /// One row per successfully attacked cell.
    pub table: Table,
    /// Whether every *correct* run met the Theorem 2.2 space bound.
    pub all_ok: bool,
    /// Skip-and-record log for cells whose run errored or panicked.
    pub skipped: Vec<String>,
}

/// Runs the grid on `jobs` workers. Cell results are assembled in input
/// order, so the table (and its CSV mirror) is identical for every
/// `jobs`. With `progress` set, a coarse per-cell line (cell id,
/// verdict, items/s) goes to stderr as each cell completes.
pub fn thm22_sweep(cells: &[Thm22Cell], jobs: usize, progress: bool) -> Thm22Sweep {
    let report = |c: &Completion<'_, Result<cqs_core::AdversaryReport, String>>| {
        if !progress {
            return;
        }
        let cell = &cells[c.index];
        let (verdict, items) = match c.outcome {
            CellOutcome::Done(Ok(rep)) => ("completed", 2 * rep.n),
            CellOutcome::Done(Err(_)) => ("skipped", 0),
            CellOutcome::Panicked(_) => ("panicked", 0),
        };
        eprintln!(
            "[thm22 {}/{}] eps={} k={} {} {} {:.0} items/s ({:.2}s)",
            c.finished,
            c.total,
            cell.eps,
            cell.k,
            cell.target.name(),
            verdict,
            items_per_sec(items, c.elapsed),
            c.elapsed.as_secs_f64()
        );
    };
    let outcomes = run_cells(
        cells,
        jobs,
        |_, cell| try_attack(cell.eps, cell.k, cell.target),
        report,
    );

    let mut table = Table::new(&[
        "eps",
        "k",
        "N",
        "target",
        "gap",
        "ceil(2epsN)",
        "peak|I|",
        "thm2.2",
        "peak/bound",
        "gk-upper",
        "claim1-viol",
        "lemma52-viol",
        "indist",
    ]);
    let mut all_ok = true;
    let mut skipped = Vec::new();
    for (cell, outcome) in cells.iter().zip(outcomes) {
        // Skip-and-record: one crashing or model-violating config must
        // not abort the remaining cells; a panic that escaped the
        // guarded driver is recorded the same way.
        let rep = match outcome {
            CellOutcome::Done(Ok(rep)) => rep,
            CellOutcome::Done(Err(e)) => {
                skipped.push(format!(
                    "eps={} k={} {}: {e}",
                    cell.eps,
                    cell.k,
                    cell.target.name()
                ));
                continue;
            }
            CellOutcome::Panicked(msg) => {
                skipped.push(format!(
                    "eps={} k={} {}: cell panicked: {msg} [summary-panicked]",
                    cell.eps,
                    cell.k,
                    cell.target.name()
                ));
                continue;
            }
        };
        let gk_upper = cell.eps.inverse() as f64 * (cell.k as f64 + 1.0);
        let ratio = rep.max_stored as f64 / rep.theorem22_bound;
        let correct = rep.final_gap <= rep.gap_ceiling;
        let met = rep.max_stored as f64 >= rep.theorem22_bound;
        if correct && !met {
            all_ok = false;
        }
        table.row(&[
            &cell.eps.to_string(),
            &cell.k.to_string(),
            &rep.n.to_string(),
            &cell.target.name(),
            &rep.final_gap.to_string(),
            &rep.gap_ceiling.to_string(),
            &rep.max_stored.to_string(),
            &f1(rep.theorem22_bound),
            &f1(ratio),
            &f1(gk_upper),
            &rep.claim1_violations.to_string(),
            &rep.lemma52_violations.to_string(),
            &rep.equivalence_ok.to_string(),
        ]);
    }
    Thm22Sweep {
        table,
        all_ok,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_matches_serial_nesting() {
        let cells = thm22_grid(&[8, 16], 3..=4, &[Target::Gk, Target::GkGreedy]);
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].eps.inverse(), 8);
        assert_eq!(cells[0].k, 3);
        assert_eq!(cells[0].target, Target::Gk);
        assert_eq!(cells[1].target, Target::GkGreedy);
        assert_eq!(cells[2].k, 4);
        assert_eq!(cells[4].eps.inverse(), 16);
    }

    #[test]
    fn tiny_sweep_produces_rows_in_cell_order() {
        let cells = thm22_grid(&[8], 3..=3, &[Target::Gk, Target::GkGreedy]);
        let sweep = thm22_sweep(&cells, 2, false);
        assert!(sweep.skipped.is_empty(), "{:?}", sweep.skipped);
        let csv = sweep.table.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("gk"), "{csv}");
        assert!(rows[1].contains("gk-greedy"), "{csv}");
    }
}
