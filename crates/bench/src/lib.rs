#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries (`src/bin/*.rs`), one per
//! figure/theorem of the paper (see DESIGN.md's per-experiment index),
//! and for the std-only micro-benchmarks in `benches/` (see [`micro`]).
//!
//! Every binary prints an aligned table and mirrors it to
//! `results/<experiment>.csv` at the workspace root, so
//! EXPERIMENTS.md's numbers are regenerable with
//! `cargo run -p cqs-bench --release --bin <name>`.

pub mod checkpoint;
pub mod exec;
pub mod json;
pub mod micro;
pub mod sweeps;

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

use cqs_core::adversary::{
    run_adversary, try_run_adversary_repr, AdversaryOutcome, AdversaryReport,
};
use cqs_core::{ComparisonSummary, Eps, Item, StreamRepr};
use cqs_gk::{CappedGk, GkSummary, GreedyGk};
use cqs_kll::KllSketch;
use cqs_streams::Table;

/// Which summary the adversary attacks in a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Banded Greenwald–Khanna.
    Gk,
    /// Greedy Greenwald–Khanna.
    GkGreedy,
    /// Fixed-seed KLL (the derandomized randomized sketch).
    KllFixed,
    /// Space-capped GK with the given item budget.
    Capped(usize),
}

impl Target {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Target::Gk => "gk".into(),
            Target::GkGreedy => "gk-greedy".into(),
            Target::KllFixed => "kll-fixed".into(),
            Target::Capped(b) => format!("gk-capped({b})"),
        }
    }
}

/// Runs the full adversarial construction against the chosen target and
/// returns the flat report.
pub fn attack(eps: Eps, k: u32, target: Target) -> AdversaryReport {
    attack_repr(eps, k, target, StreamRepr::Materialized)
}

/// [`attack`] with an explicit stream representation — the unguarded
/// (and therefore honestly-timed) path `perf_baseline` records; sweeps
/// that must survive misbehaving summaries use [`try_attack_repr`].
pub fn attack_repr(eps: Eps, k: u32, target: Target, repr: StreamRepr) -> AdversaryReport {
    fn go<S: ComparisonSummary<Item>>(
        eps: Eps,
        k: u32,
        repr: StreamRepr,
        mut make: impl FnMut() -> S,
    ) -> AdversaryReport {
        cqs_core::Adversary::new(eps, make(), make())
            .with_stream_repr(repr)
            .run(k)
            .report()
    }
    match target {
        Target::Gk => go(eps, k, repr, || GkSummary::<Item>::new(eps.value())),
        Target::GkGreedy => go(eps, k, repr, || GreedyGk::<Item>::new(eps.value())),
        Target::KllFixed => {
            let kcap = (4 * eps.inverse() as usize).max(8);
            go(eps, k, repr, || KllSketch::<Item>::with_seed(kcap, 0xD1CE))
        }
        Target::Capped(b) => go(eps, k, repr, || CappedGk::<Item>::new(eps.value(), b)),
    }
}

/// Panic-free [`attack`]: runs the construction through the guarded
/// driver so one crashing or model-violating config yields an `Err`
/// (with the full error rendered) instead of killing a whole sweep.
/// The sweep binaries skip-and-record such configs.
pub fn try_attack(eps: Eps, k: u32, target: Target) -> Result<AdversaryReport, String> {
    try_attack_repr(eps, k, target, StreamRepr::Materialized)
}

/// [`try_attack`] with an explicit stream representation.
/// `StreamRepr::Implicit` keeps the adversary's order indexes
/// interval-compressed — memory sublinear in N — which is what lets the
/// large-N sweep grids drive cells at N = 10⁸–10⁹.
pub fn try_attack_repr(
    eps: Eps,
    k: u32,
    target: Target,
    repr: StreamRepr,
) -> Result<AdversaryReport, String> {
    fn go<S: ComparisonSummary<Item>>(
        eps: Eps,
        k: u32,
        repr: StreamRepr,
        make: impl FnMut() -> S,
    ) -> Result<AdversaryReport, String> {
        try_run_adversary_repr(eps, k, repr, make)
            .map(|o| o.report())
            .map_err(|e| format!("{} [{}]", e, e.verdict()))
    }
    match target {
        Target::Gk => go(eps, k, repr, || GkSummary::<Item>::new(eps.value())),
        Target::GkGreedy => go(eps, k, repr, || GreedyGk::<Item>::new(eps.value())),
        Target::KllFixed => {
            let kcap = (4 * eps.inverse() as usize).max(8);
            go(eps, k, repr, || KllSketch::<Item>::with_seed(kcap, 0xD1CE))
        }
        Target::Capped(b) => go(eps, k, repr, || CappedGk::<Item>::new(eps.value(), b)),
    }
}

/// Runs the adversary and returns the full outcome (streams + audits)
/// for a capped GK target — used by the failure-witness experiments.
pub fn attack_capped_outcome(eps: Eps, k: u32, budget: usize) -> AdversaryOutcome<CappedGk<Item>> {
    run_adversary(eps, k, move || CappedGk::<Item>::new(eps.value(), budget))
}

/// Runs the adversary and returns the full outcome for banded GK.
pub fn attack_gk_outcome(eps: Eps, k: u32) -> AdversaryOutcome<GkSummary<Item>> {
    run_adversary(eps, k, || GkSummary::<Item>::new(eps.value()))
}

/// Resolves `results/<file>` at the workspace root, or `<dir>/<file>`
/// when the `CQS_RESULTS_DIR` environment variable is set (CI smoke
/// runs redirect there so they never clobber the committed CSVs).
pub fn results_path(file: &str) -> PathBuf {
    if let Some(dir) = std::env::var_os("CQS_RESULTS_DIR") {
        return PathBuf::from(dir).join(file);
    }
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    root.canonicalize()
        .unwrap_or(root)
        .join("results")
        .join(file)
}

/// How many CSV mirrors failed to write in this process (see [`emit`]).
static MIRROR_FAILURES: AtomicUsize = AtomicUsize::new(0);

/// Number of [`emit`] calls whose CSV mirror failed so far.
pub fn mirror_failures() -> usize {
    MIRROR_FAILURES.load(Ordering::Relaxed)
}

/// Exit code for an experiment binary: failure when any CSV mirror
/// failed to write, so `run_all_experiments` (and CI) cannot green-light
/// a sweep whose `results/` artifacts are missing. Every experiment
/// `main` ends with `cqs_bench::exit_status()`.
pub fn exit_status() -> ExitCode {
    let n = mirror_failures();
    if n == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("[csv] {n} mirror(s) failed — results/ artifacts are incomplete");
        ExitCode::FAILURE
    }
}

/// Prints a table under a titled banner and mirrors it to
/// `results/<csv_name>`. A failed mirror is reported on stderr *and*
/// counted, so [`exit_status`] turns it into a nonzero exit — the table
/// on stdout remains the experiment's primary output, but CI must not
/// treat a sweep with missing `results/` artifacts as fully successful.
pub fn emit(title: &str, table: &Table, csv_name: &str) {
    println!("\n=== {title} ===\n");
    print!("{}", table.render());
    let path = results_path(csv_name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match cqs_streams::write_csv(table, &path) {
        Ok(()) => println!("\n[csv] {}", path.display()),
        Err(e) => {
            MIRROR_FAILURES.fetch_add(1, Ordering::Relaxed);
            eprintln!("\n[csv] failed to write {}: {e}", path.display());
        }
    }
}

/// Formats a float with 1 decimal place (experiment tables).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Drives any summary over a `u64` workload, returning (peak stored,
/// final stored, max rank error over a grid of `grid` targets).
///
/// Values must be a permutation-like stream where the true rank of a
/// value can be computed by sorting — the function sorts a copy for
/// ground truth.
pub fn drive_u64<S: ComparisonSummary<u64>>(
    summary: &mut S,
    values: &[u64],
    grid: usize,
) -> DriveStats {
    let mut peak = 0usize;
    for &v in values {
        summary.insert(v);
        peak = peak.max(summary.stored_count());
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let mut max_err = 0u64;
    for j in 0..=grid as u64 {
        let r = (1 + j * (n - 1) / grid as u64).clamp(1, n);
        if let Some(ans) = summary.query_rank(r) {
            // True rank range of ans in the (multi)set.
            let lo = sorted.partition_point(|&x| x < ans) as u64 + 1;
            let hi = sorted.partition_point(|&x| x <= ans) as u64;
            let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
            max_err = max_err.max(err);
        }
    }
    DriveStats {
        peak_stored: peak,
        final_stored: summary.stored_count(),
        max_rank_error: max_err,
    }
}

/// Outcome of [`drive_u64`].
#[derive(Clone, Copy, Debug)]
pub struct DriveStats {
    /// Largest |I| observed.
    pub peak_stored: usize,
    /// |I| at end of stream.
    pub final_stored: usize,
    /// Worst rank error over the query grid.
    pub max_rank_error: u64,
}

/// Compile-time audit that the sweep vocabulary is pool-safe: cells go
/// out to `run_cells` workers, outcomes/completions/JSON rows and the
/// assembled sweep come back. Never called — the `sharding-send-sync`
/// lint rule derives this list from the spawn-site call graph and keeps
/// the lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit<R: Send + Sync>() {
    fn assert_send<T: Send>() {}
    assert_send::<Target>();
    assert_send::<exec::CellOutcome<R>>();
    assert_send::<exec::Completion<'_, R>>();
    assert_send::<json::Json>();
    assert_send::<sweeps::Thm22Cell>();
    assert_send::<sweeps::Thm22Sweep>();
    // Checkpointing vocabulary: the persisting report wrapper runs on
    // pool workers, so everything it touches must cross threads.
    assert_send::<checkpoint::SweepCheckpoint>();
    assert_send::<checkpoint::CrashPolicy>();
    assert_send::<checkpoint::CheckpointConfig>();
    assert_send::<checkpoint::CkptOutcome<'_, R>>();
    assert_send::<checkpoint::CkptProgress<'_, R>>();
    assert_send::<checkpoint::CheckpointedRun<R>>();
    assert_send::<checkpoint::CheckpointedSweep<R>>();
    assert_send::<checkpoint::ResumeInfo>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_dispatches_all_targets() {
        let eps = Eps::from_inverse(8);
        for t in [
            Target::Gk,
            Target::GkGreedy,
            Target::KllFixed,
            Target::Capped(8),
        ] {
            let rep = attack(eps, 3, t);
            assert_eq!(rep.n, eps.stream_len(3), "{:?}", t);
            assert!(rep.equivalence_ok, "{:?} broke indistinguishability", t);
        }
    }

    #[test]
    fn drive_reports_sane_stats() {
        let vals: Vec<u64> = (1..=1000).collect();
        let mut gk = GkSummary::new(0.05);
        let stats = drive_u64(&mut gk, &vals, 20);
        assert!(stats.peak_stored >= stats.final_stored.min(stats.peak_stored));
        assert!(stats.max_rank_error <= 50);
    }

    #[test]
    fn results_path_lands_in_workspace_results() {
        let p = results_path("x.csv");
        assert!(p.to_string_lossy().contains("results"));
    }

    #[test]
    fn failed_mirror_is_counted_and_fails_exit_status() {
        // Block the mirror by routing CQS_RESULTS_DIR *under a file* —
        // create_dir_all and the write both fail with NotADirectory.
        // (The override value still contains "results", so the sibling
        // results_path test stays valid while this env var is set.)
        let blocker = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join("mirror-blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        std::env::set_var("CQS_RESULTS_DIR", blocker.join("results-sub"));
        let before = mirror_failures();
        let mut t = Table::new(&["a"]);
        t.row(&["1"]);
        emit("mirror failure test", &t, "never_lands.csv");
        std::env::remove_var("CQS_RESULTS_DIR");
        assert!(mirror_failures() > before, "mirror failure not counted");
        // ExitCode has no PartialEq; compare the Debug rendering.
        assert_eq!(
            format!("{:?}", exit_status()),
            format!("{:?}", ExitCode::FAILURE)
        );
    }
}
