//! Crash-recoverable sweep checkpointing on top of [`crate::exec`].
//!
//! A checkpointed sweep persists every completed cell's encoded result
//! to a `cqs-snapshot` file (`SWPC` kind) via the atomic
//! write-temp-then-rename + rotation protocol, and on the next run
//! reuses every intact stored result, replaying only the cells that are
//! missing, panicked, or rejected by the wire format's corruption
//! checks. Because results are merged back **in input order** and every
//! `f64` round-trips bit-exactly, a sweep that crashes and resumes —
//! any number of times, under any `--jobs` — renders the same table
//! byte-for-byte as one uninterrupted run (PR 4's determinism guarantee
//! extended across process boundaries).
//!
//! Crash injection for the CI recovery leg is built in:
//! [`crash_policy_from_env`] reads `CQS_CRASH_AFTER_CELLS=k` and makes
//! the sweep exit with code [`CRASH_EXIT_CODE`] after `k` freshly
//! persisted cells, mid-run, exactly like a real crash (the in-process
//! [`CrashPolicy::Halt`] variant does the same without killing the
//! process, for tests).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use cqs_snapshot::atomic::{restore_with_fallback, save_rotating};
use cqs_snapshot::{RestoreError, SnapshotRead, SnapshotReader, SnapshotWrite, SnapshotWriter};

use crate::exec::{run_cells, CellOutcome, Completion};

const META: [u8; 4] = *b"META";
const CELL: [u8; 4] = *b"CELL";

/// On-disk progress of one sweep: the grid fingerprint it belongs to
/// plus the encoded result of every completed cell, keyed by input
/// index.
pub struct SweepCheckpoint {
    /// [`grid_fingerprint`] of the cell grid this checkpoint is for; a
    /// mismatch on restore means the grid changed and the checkpoint is
    /// discarded (cold start) rather than misapplied.
    pub fingerprint: u64,
    /// Encoded per-cell results, keyed by input-order cell index.
    pub completed: BTreeMap<u64, Vec<u8>>,
}

fn write_checkpoint_sections(
    w: &mut SnapshotWriter,
    fingerprint: u64,
    completed: &BTreeMap<u64, Vec<u8>>,
) {
    w.section_with(META, |e| e.put_u64(fingerprint));
    w.section_with(CELL, |e| {
        e.put_u64(completed.len() as u64);
        for (&index, record) in completed {
            e.put_u64(index);
            e.put_bytes(record);
        }
    });
}

/// Serializes a checkpoint from borrowed parts (the hot path saves
/// under a lock and must not clone the map).
fn checkpoint_bytes(fingerprint: u64, completed: &BTreeMap<u64, Vec<u8>>) -> Vec<u8> {
    let mut w = SnapshotWriter::new(SweepCheckpoint::KIND);
    write_checkpoint_sections(&mut w, fingerprint, completed);
    w.into_bytes()
}

impl SnapshotWrite for SweepCheckpoint {
    const KIND: [u8; 4] = *b"SWPC";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        write_checkpoint_sections(w, self.fingerprint, &self.completed);
    }
}

impl SnapshotRead for SweepCheckpoint {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(META)?;
        let fingerprint = meta.take_u64()?;
        meta.finish()?;
        let mut cells = r.section(CELL)?;
        // Each entry is at least index (8) + record length prefix (8).
        let count = cells.take_count(16)?;
        let mut completed = BTreeMap::new();
        for _ in 0..count {
            let index = cells.take_u64()?;
            let record = cells.take_bytes()?.to_vec();
            if completed.insert(index, record).is_some() {
                return Err(RestoreError::Malformed {
                    section: "CELL".to_string(),
                    detail: format!("duplicate cell index {index}"),
                });
            }
        }
        cells.finish()?;
        Ok(SweepCheckpoint {
            fingerprint,
            completed,
        })
    }
}

/// FNV-1a fingerprint of a cell grid, fed one stable description string
/// per cell. Binding checkpoints to the grid means a checkpoint taken
/// on one grid can never be silently applied to another (changed ε
/// range, reordered targets, different binary).
pub fn grid_fingerprint<I, S>(descriptions: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for desc in descriptions {
        for &b in desc.as_ref().as_bytes() {
            mix(b);
        }
        // Separator outside UTF-8 so ["ab","c"] != ["a","bc"].
        mix(0xff);
    }
    h
}

/// Environment variable the CI recovery leg sets to inject a crash.
pub const CRASH_ENV: &str = "CQS_CRASH_AFTER_CELLS";

/// Exit code of an injected crash — distinct from every real failure
/// exit so the recovery harness can tell "crashed as instructed" from
/// "actually broke".
pub const CRASH_EXIT_CODE: i32 = 86;

/// What to do after `k` freshly persisted cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Run to completion (the default).
    None,
    /// Exit the process with [`CRASH_EXIT_CODE`] — a real mid-run crash
    /// for the CI recovery leg. In-flight cells die unrecorded, exactly
    /// as with a power cut.
    Exit(usize),
    /// Stop claiming new cells and return
    /// [`CheckpointedRun::Halted`] — the in-process analogue for tests.
    Halt(usize),
}

/// Reads [`CRASH_ENV`]: absent means [`CrashPolicy::None`], a positive
/// integer `k` means [`CrashPolicy::Exit`]`(k)`.
pub fn crash_policy_from_env() -> Result<CrashPolicy, String> {
    match std::env::var(CRASH_ENV) {
        Err(_) => Ok(CrashPolicy::None),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(k) if k > 0 => Ok(CrashPolicy::Exit(k)),
            _ => Err(format!(
                "{CRASH_ENV}: expected a positive integer cell count, got {v:?}"
            )),
        },
    }
}

/// Where a checkpointed sweep persists progress and how it crashes.
pub struct CheckpointConfig {
    /// The checkpoint file (its `.prev`/`.tmp` siblings are managed by
    /// the rotation protocol).
    pub path: PathBuf,
    /// Crash-injection policy for this run.
    pub crash: CrashPolicy,
}

impl CheckpointConfig {
    /// The checkpoint file `<dir>/<name>.ckpt` with no crash injection.
    pub fn in_dir(dir: &Path, name: &str) -> Self {
        CheckpointConfig {
            path: dir.join(format!("{name}.ckpt")),
            crash: CrashPolicy::None,
        }
    }
}

/// What the progress callback sees for one cell of a checkpointed run.
pub enum CkptOutcome<'a, R> {
    /// Cell ran to completion this process.
    Done(&'a R),
    /// Cell panicked (not persisted; a resume replays it).
    Panicked(&'a str),
    /// Cell was claimed after a [`CrashPolicy::Halt`] tripped and did
    /// not run.
    Skipped,
}

/// Progress report for one freshly run cell. `finished`/`total` count
/// over the whole grid, with reused cells pre-counted, so progress
/// lines show global position after a resume.
pub struct CkptProgress<'a, R> {
    /// Input-order index of the cell in the full grid.
    pub index: usize,
    /// Cells finished so far, including those reused from the
    /// checkpoint.
    pub finished: usize,
    /// Total cells in the full grid.
    pub total: usize,
    /// What happened.
    pub outcome: CkptOutcome<'a, R>,
    /// Wall-clock time of this cell.
    pub elapsed: Duration,
}

/// How a checkpointed run ended.
pub enum CheckpointedRun<R> {
    /// Every cell has an outcome, in input order — reused and fresh
    /// cells are indistinguishable here by construction.
    Complete(Vec<CellOutcome<R>>),
    /// A [`CrashPolicy::Halt`] tripped; `completed` cells have
    /// persisted outcomes and the rest await a resume.
    Halted {
        /// Number of cells with recorded outcomes.
        completed: usize,
    },
}

/// How the checkpoint restore went before the run started.
pub struct ResumeInfo {
    /// Cells reused from the checkpoint (skipped this process).
    pub reused: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Typed-verdict log: every rejected checkpoint generation,
    /// fingerprint mismatch, rejected stored cell, or persist failure.
    /// Empty for a clean cold start or a clean resume.
    pub events: Vec<String>,
}

/// A finished checkpointed sweep.
pub struct CheckpointedSweep<R> {
    /// The run outcome.
    pub run: CheckpointedRun<R>,
    /// Restore/persist audit trail.
    pub resume: ResumeInfo,
}

/// [`run_cells`] with persistent progress: restores the checkpoint at
/// `cfg.path` (falling back latest → previous → cold start, never
/// restoring corruption), runs only the cells without an intact stored
/// result, persists each fresh completion atomically, and merges
/// reused + fresh outcomes in input order.
///
/// `encode` turns a completed result into its stored record
/// (returning `None` skips persistence and the cell is replayed on
/// resume); `decode` must invert it, rejecting anything malformed with
/// a typed error. Panicked cells are never persisted.
#[allow(clippy::too_many_arguments)]
pub fn run_cells_checkpointed<T, R, F, Enc, Dec, P>(
    cells: &[T],
    jobs: usize,
    cfg: &CheckpointConfig,
    fingerprint: u64,
    run: F,
    encode: Enc,
    decode: Dec,
    report: P,
) -> CheckpointedSweep<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    Enc: Fn(&R) -> Option<Vec<u8>> + Sync,
    Dec: Fn(&[u8]) -> Result<R, RestoreError>,
    P: Fn(&CkptProgress<'_, R>) + Sync,
{
    let total = cells.len();
    let mut events = Vec::new();

    // Restore: graceful degradation with a typed verdict per rejected
    // generation; a fingerprint mismatch discards the checkpoint rather
    // than misapplying it.
    let recovery = restore_with_fallback::<SweepCheckpoint>(&cfg.path);
    for ev in &recovery.events {
        events.push(ev.to_string());
    }
    let mut persisted = match recovery.value {
        Some((ck, _)) if ck.fingerprint == fingerprint => ck.completed,
        Some((ck, _)) => {
            events.push(format!(
                "checkpoint fingerprint {:#018x} does not match this grid ({:#018x}); cold start",
                ck.fingerprint, fingerprint
            ));
            BTreeMap::new()
        }
        None => BTreeMap::new(),
    };
    persisted.retain(|&i, _| usize::try_from(i).is_ok_and(|i| i < total));

    // Decode every stored record; a rejected record is dropped (and
    // replayed) with its verdict on the log — never silently restored.
    let mut reused: BTreeMap<usize, R> = BTreeMap::new();
    let mut rejected = Vec::new();
    for (&i, record) in &persisted {
        let Ok(idx) = usize::try_from(i) else {
            continue;
        };
        match decode(record) {
            Ok(r) => {
                reused.insert(idx, r);
            }
            Err(e) => {
                events.push(format!(
                    "cell {idx}: stored result rejected ({e}); replaying"
                ));
                rejected.push(i);
            }
        }
    }
    for i in rejected {
        persisted.remove(&i);
    }

    let pending: Vec<usize> = (0..total).filter(|i| !reused.contains_key(i)).collect();
    let base_finished = reused.len();

    let store = Mutex::new(persisted);
    let save_errors = Mutex::new(Vec::<String>::new());
    let fresh_persisted = AtomicUsize::new(0);
    let halted = AtomicBool::new(false);

    let sub_outcomes = run_cells(
        &pending,
        jobs,
        |_, &orig| {
            if halted.load(Ordering::Relaxed) {
                return None;
            }
            cells.get(orig).map(|cell| run(orig, cell))
        },
        |c: &Completion<'_, Option<R>>| {
            let Some(&orig) = pending.get(c.index) else {
                return;
            };
            let outcome = match c.outcome {
                CellOutcome::Done(Some(r)) => CkptOutcome::Done(r),
                CellOutcome::Done(None) => CkptOutcome::Skipped,
                CellOutcome::Panicked(msg) => CkptOutcome::Panicked(msg),
            };
            let mut persisted_now = false;
            if let CkptOutcome::Done(r) = &outcome {
                if let Some(record) = encode(r) {
                    let save = match store.lock() {
                        Ok(mut map) => {
                            map.insert(orig as u64, record);
                            save_rotating(&cfg.path, &checkpoint_bytes(fingerprint, &map))
                        }
                        Err(_) => Ok(()), // poisoned: skip persist, cell replays
                    };
                    match save {
                        Ok(()) => persisted_now = true,
                        Err(e) => {
                            if let Ok(mut errs) = save_errors.lock() {
                                errs.push(format!("cell {orig}: checkpoint save failed: {e}"));
                            }
                        }
                    }
                }
            }
            report(&CkptProgress {
                index: orig,
                finished: base_finished + c.finished,
                total,
                outcome,
                elapsed: c.elapsed,
            });
            if persisted_now {
                let done = fresh_persisted.fetch_add(1, Ordering::Relaxed) + 1;
                match cfg.crash {
                    CrashPolicy::Exit(k) if done >= k => {
                        eprintln!(
                            "[checkpoint] injected crash: exiting after {done} freshly persisted cells"
                        );
                        std::process::exit(CRASH_EXIT_CODE);
                    }
                    CrashPolicy::Halt(k) if done >= k => halted.store(true, Ordering::Relaxed),
                    _ => {}
                }
            }
        },
    );

    if let Ok(errs) = save_errors.into_inner() {
        events.extend(errs);
    }

    // Merge reused and fresh outcomes back into input order. The
    // pending list is ascending, so fresh outcomes align with the
    // non-reused indices in order.
    let mut fresh = sub_outcomes.into_iter();
    let mut results = Vec::with_capacity(total);
    let mut incomplete = false;
    for i in 0..total {
        if let Some(r) = reused.remove(&i) {
            results.push(CellOutcome::Done(r));
            continue;
        }
        match fresh.next() {
            Some(CellOutcome::Done(Some(r))) => results.push(CellOutcome::Done(r)),
            Some(CellOutcome::Panicked(msg)) => results.push(CellOutcome::Panicked(msg)),
            Some(CellOutcome::Done(None)) | None => incomplete = true,
        }
    }
    let run = if incomplete {
        CheckpointedRun::Halted {
            completed: results.len(),
        }
    } else {
        CheckpointedRun::Complete(results)
    };
    CheckpointedSweep {
        run,
        resume: ResumeInfo {
            reused: base_finished,
            total,
            events,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_snapshot::SnapshotRead;
    use std::path::PathBuf;

    fn temp_cfg(tag: &str) -> (PathBuf, CheckpointConfig) {
        let dir = std::env::temp_dir().join(format!("cqs-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = CheckpointConfig::in_dir(&dir, "sweep");
        (dir, cfg)
    }

    fn encode_u64(r: &u64) -> Option<Vec<u8>> {
        Some(r.to_le_bytes().to_vec())
    }

    fn decode_u64(b: &[u8]) -> Result<u64, RestoreError> {
        let arr: [u8; 8] = b.try_into().map_err(|_| RestoreError::Malformed {
            section: "CELL".to_string(),
            detail: "bad record width".to_string(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    fn silent<R>(_: &CkptProgress<'_, R>) {}

    #[test]
    fn checkpoint_wire_round_trip() {
        let ck = SweepCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            completed: BTreeMap::from([(0u64, vec![1, 2, 3]), (7u64, vec![])]),
        };
        let back = SweepCheckpoint::from_snapshot_bytes(&ck.to_snapshot_bytes()).unwrap();
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.completed, ck.completed);
    }

    #[test]
    fn fingerprint_separates_grids() {
        let a = grid_fingerprint(["ab", "c"]);
        let b = grid_fingerprint(["a", "bc"]);
        let c = grid_fingerprint(["ab", "c"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn halt_then_resume_reproduces_uninterrupted_results() {
        let cells: Vec<u64> = (0..12).collect();
        let fp = grid_fingerprint(cells.iter().map(|c| c.to_string()));
        let run = |_: usize, &c: &u64| c.wrapping_mul(0x9E37_79B9);
        let expected: Vec<u64> = cells.iter().map(|&c| c.wrapping_mul(0x9E37_79B9)).collect();

        let (dir, mut cfg) = temp_cfg("halt");
        cfg.crash = CrashPolicy::Halt(4);
        let first =
            run_cells_checkpointed(&cells, 1, &cfg, fp, run, encode_u64, decode_u64, silent);
        let CheckpointedRun::Halted { completed } = first.run else {
            panic!("halt policy should leave the run incomplete");
        };
        assert!((4..12).contains(&completed), "completed={completed}");
        assert!(first.resume.events.is_empty(), "{:?}", first.resume.events);

        // Resume on a different worker count: reuses the halted run's
        // cells and completes with identical input-order results.
        cfg.crash = CrashPolicy::None;
        let second =
            run_cells_checkpointed(&cells, 4, &cfg, fp, run, encode_u64, decode_u64, silent);
        let CheckpointedRun::Complete(outcomes) = second.run else {
            panic!("resumed run should complete");
        };
        assert_eq!(second.resume.reused, completed);
        let values: Vec<u64> = outcomes
            .into_iter()
            .map(|o| o.into_done().unwrap())
            .collect();
        assert_eq!(values, expected);

        // A third run reuses everything and runs zero cells.
        let third =
            run_cells_checkpointed(&cells, 2, &cfg, fp, run, encode_u64, decode_u64, silent);
        assert_eq!(third.resume.reused, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_with_verdict_and_rerun() {
        let cells: Vec<u64> = (0..6).collect();
        let fp = grid_fingerprint(cells.iter().map(|c| c.to_string()));
        let run = |_: usize, &c: &u64| c + 100;

        let (dir, cfg) = temp_cfg("corrupt");
        let first =
            run_cells_checkpointed(&cells, 2, &cfg, fp, run, encode_u64, decode_u64, silent);
        assert!(matches!(first.run, CheckpointedRun::Complete(_)));

        // Flip a payload bit in both generations: restore must reject
        // them with typed corruption verdicts and rerun from scratch.
        for path in [
            cfg.path.clone(),
            cqs_snapshot::atomic::previous_path(&cfg.path),
        ] {
            if !path.exists() {
                continue;
            }
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
        }
        let second =
            run_cells_checkpointed(&cells, 2, &cfg, fp, run, encode_u64, decode_u64, silent);
        assert_eq!(second.resume.reused, 0, "corruption must not be restored");
        assert!(
            !second.resume.events.is_empty(),
            "silent restore of corrupt checkpoint"
        );
        let CheckpointedRun::Complete(outcomes) = second.run else {
            panic!("rerun should complete");
        };
        let values: Vec<u64> = outcomes
            .into_iter()
            .map(|o| o.into_done().unwrap())
            .collect();
        assert_eq!(values, vec![100, 101, 102, 103, 104, 105]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_forces_cold_start() {
        let cells: Vec<u64> = (0..4).collect();
        let run = |_: usize, &c: &u64| c;
        let (dir, cfg) = temp_cfg("fp");
        let fp_a = grid_fingerprint(["grid-a"]);
        let first =
            run_cells_checkpointed(&cells, 1, &cfg, fp_a, run, encode_u64, decode_u64, silent);
        assert!(matches!(first.run, CheckpointedRun::Complete(_)));
        let fp_b = grid_fingerprint(["grid-b"]);
        let second =
            run_cells_checkpointed(&cells, 1, &cfg, fp_b, run, encode_u64, decode_u64, silent);
        assert_eq!(second.resume.reused, 0);
        assert!(second
            .resume
            .events
            .iter()
            .any(|e| e.contains("fingerprint")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicked_cells_are_not_persisted_and_replay() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cells: Vec<u64> = (0..5).collect();
        let fp = grid_fingerprint(["panic-grid"]);
        let (dir, cfg) = temp_cfg("panic");
        let first = run_cells_checkpointed(
            &cells,
            1,
            &cfg,
            fp,
            |_, &c| {
                if c == 2 {
                    panic!("boom");
                }
                c
            },
            encode_u64,
            decode_u64,
            silent,
        );
        std::panic::set_hook(hook);
        let CheckpointedRun::Complete(outcomes) = first.run else {
            panic!("first run should complete");
        };
        assert!(matches!(outcomes.get(2), Some(CellOutcome::Panicked(_))));

        // The resume replays exactly the panicked cell (now healthy).
        let second = run_cells_checkpointed(
            &cells,
            1,
            &cfg,
            fp,
            |_, &c| c,
            encode_u64,
            decode_u64,
            silent,
        );
        assert_eq!(second.resume.reused, 4);
        let CheckpointedRun::Complete(outcomes) = second.run else {
            panic!("second run should complete");
        };
        let values: Vec<u64> = outcomes
            .into_iter()
            .map(|o| o.into_done().unwrap())
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_env_parsing() {
        assert!(matches!(crash_policy_from_env(), Ok(CrashPolicy::None)));
    }
}
