//! A minimal std-only micro-benchmark harness.
//!
//! Replaces the former Criterion dependency so the workspace builds with
//! no registry access: each measurement runs a closure `samples` times,
//! reports min / median wall time and per-element throughput. No
//! statistics beyond that — for serious profiling, use the experiment
//! binaries with an external profiler.
//!
//! Wall-clock use is confined to this crate; the conformance lint
//! (`cargo run -p cqs-xtask -- lint`) exempts `cqs-bench` from the
//! determinism rules precisely so timing can live here and nowhere else.

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark case.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Case label, e.g. `"insert_shuffled_50k/gk"`.
    pub label: String,
    /// Fastest observed sample.
    pub min_ns: u128,
    /// Median observed sample.
    pub median_ns: u128,
    /// Work items per run, for throughput reporting (0 = unset).
    pub elements: u64,
}

impl Measurement {
    /// Per-element cost of the median sample, in nanoseconds.
    pub fn ns_per_element(&self) -> f64 {
        if self.elements == 0 {
            return self.median_ns as f64;
        }
        self.median_ns as f64 / self.elements as f64
    }
}

/// Times `f` `samples` times (after one warm-up call) and returns the
/// measurement. The closure's result is passed through
/// [`std::hint::black_box`] so the optimiser cannot elide the work.
pub fn measure<T>(
    label: &str,
    elements: u64,
    samples: usize,
    mut f: impl FnMut() -> T,
) -> Measurement {
    let samples = samples.max(1);
    black_box(f()); // warm-up: page in code and data
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    Measurement {
        label: label.to_string(),
        min_ns: times[0],
        median_ns: times[times.len() / 2],
        elements,
    }
}

/// Runs and immediately prints a measurement in one aligned row.
pub fn bench<T>(label: &str, elements: u64, samples: usize, f: impl FnMut() -> T) -> Measurement {
    let m = measure(label, elements, samples, f);
    print_row(&m);
    m
}

/// Prints the header row matching [`print_row`].
pub fn print_header(group: &str) {
    println!("\n== {group} ==");
    println!(
        "{:<40} {:>14} {:>14} {:>12}",
        "case", "min", "median", "ns/elem"
    );
}

fn print_row(m: &Measurement) {
    println!(
        "{:<40} {:>14} {:>14} {:>12.1}",
        m.label,
        fmt_ns(m.min_ns),
        fmt_ns(m.median_ns),
        m.ns_per_element()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_and_orders_samples() {
        let mut calls = 0u32;
        let m = measure("case", 10, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6); // warm-up + 5 samples
        assert!(m.min_ns <= m.median_ns);
        assert_eq!(m.elements, 10);
    }

    #[test]
    fn throughput_divides_by_elements() {
        let m = Measurement {
            label: "x".into(),
            min_ns: 100,
            median_ns: 1000,
            elements: 10,
        };
        assert!((m.ns_per_element() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(5_000), "5.00 us");
        assert_eq!(fmt_ns(5_000_000), "5.00 ms");
        assert_eq!(fmt_ns(5_000_000_000), "5.00 s");
    }
}
