//! T7 — Theorem 6.5: biased quantiles need Ω((1/ε)·log² εN) space.
//!
//! Runs the k-phase construction (each phase's items larger than all
//! before) against:
//!
//! * CKMS — an actual biased-quantile summary: because the relative
//!   guarantee pins every phase's rank range forever, it must *retain*
//!   Ω((1/ε)·i) items from phase i, totalling Ω((1/ε)·k²);
//! * uniform GK — which is allowed to forget early phases as N grows,
//!   illustrating why the uniform bound is a log factor weaker.
//!
//! Expected shape: CKMS per-phase retention at stream end stays ≈ flat
//! in i (each phase keeps its Ω((1/ε)·i)-worth of items), whereas GK's
//! early-phase retention decays; CKMS total grows ~quadratically in k,
//! GK's ~linearly.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm65_biased_phases`

use cqs_bench::{emit, f1};
use cqs_ckms::CkmsSummary;
use cqs_core::biased::run_biased_phases;
use cqs_core::{Eps, Item};
use cqs_gk::GkSummary;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 8u32;

    let ckms = run_biased_phases(eps, k, || CkmsSummary::<Item>::new(eps.value()));
    let gk = run_biased_phases(eps, k, || GkSummary::<Item>::new(eps.value()));
    assert!(ckms.equivalence_ok && gk.equivalence_ok);

    let mut t = Table::new(&[
        "phase",
        "N_i",
        "ckms@phase-end",
        "ckms@stream-end",
        "gk@phase-end",
        "gk@stream-end",
        "per-phase-bound",
    ]);
    for i in 0..k as usize {
        let c = &ckms.phase_audits[i];
        let g = &gk.phase_audits[i];
        t.row(&[
            &c.phase.to_string(),
            &c.n_i.to_string(),
            &c.stored_at_phase_end.to_string(),
            &c.stored_at_stream_end.to_string(),
            &g.stored_at_phase_end.to_string(),
            &g.stored_at_stream_end.to_string(),
            &f1(c.bound),
        ]);
    }
    emit(
        "Theorem 6.5 — biased quantiles: per-phase retention (CKMS vs uniform GK)",
        &t,
        "thm65_biased_phases.csv",
    );

    let mut totals = Table::new(&["summary", "total-N", "final|I|", "peak|I|", "sum-of-bounds"]);
    totals.row(&[
        "ckms",
        &ckms.total_len.to_string(),
        &ckms.stored_final.to_string(),
        &ckms.max_stored.to_string(),
        &f1(ckms.total_bound),
    ]);
    totals.row(&[
        "gk (uniform)",
        &gk.total_len.to_string(),
        &gk.stored_final.to_string(),
        &gk.max_stored.to_string(),
        &f1(gk.total_bound),
    ]);
    emit(
        "Theorem 6.5 — totals (the quadratic-vs-linear contrast)",
        &totals,
        "thm65_biased_totals.csv",
    );
    cqs_bench::exit_status()
}
