//! T6 — Theorem 6.2: the Estimating Rank lower bound.
//!
//! After the adversarial construction, fresh query items are minted just
//! above the low gap extreme (on π) and just below the high gap extreme
//! (on ϱ). A comparison-based estimator returns the same number on both
//! — we verify the agreement — while the true ranks differ by the gap,
//! so once the gap exceeds 2εN + 2 one answer is off by more than εN.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm62_rank_lower_bound`

use cqs_bench::{attack_capped_outcome, attack_gk_outcome, emit};
use cqs_core::rank_estimation::rank_failure_witness;
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 8u32;
    let mut t = Table::new(&[
        "target", "gap", "2epsN+2", "est-pi", "est-rho", "agree", "true-pi", "true-rho", "eps*N",
        "fails",
    ]);

    // Correct GK: gap under threshold, no witness — the space bound
    // applies instead (reported as "-").
    let out = attack_gk_outcome(eps, k);
    match rank_failure_witness(&out) {
        None => {
            t.row(&[
                "gk",
                &out.final_gap().to_string(),
                &(eps.gap_bound(eps.stream_len(k)) + 2).to_string(),
                "-",
                "-",
                "-",
                "-",
                "-",
                &eps.rank_budget(eps.stream_len(k)).to_string(),
                "false",
            ]);
        }
        Some(w) => {
            t.row(&[
                "gk",
                &w.gap.to_string(),
                &w.threshold.to_string(),
                &w.est_pi.to_string(),
                &w.est_rho.to_string(),
                &w.estimates_agree.to_string(),
                &w.true_pi.to_string(),
                &w.true_rho.to_string(),
                &w.budget.to_string(),
                &w.demonstrates_failure().to_string(),
            ]);
        }
    }

    for budget in [8usize, 16, 32] {
        let out = attack_capped_outcome(eps, k, budget);
        let w = rank_failure_witness(&out).expect("capped summary must blow the threshold");
        t.row(&[
            &format!("gk-capped({budget})"),
            &w.gap.to_string(),
            &w.threshold.to_string(),
            &w.est_pi.to_string(),
            &w.est_rho.to_string(),
            &w.estimates_agree.to_string(),
            &w.true_pi.to_string(),
            &w.true_rho.to_string(),
            &w.budget.to_string(),
            &w.demonstrates_failure().to_string(),
        ]);
    }

    emit(
        "Theorem 6.2 — Estimating Rank: agreeing estimates, diverging truths",
        &t,
        "thm62_rank_lower_bound.csv",
    );
    cqs_bench::exit_status()
}
