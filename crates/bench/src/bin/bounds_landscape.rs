//! The space-bound landscape (Section 1.1 of the paper, as a table):
//! every bound the paper positions itself against, evaluated over N,
//! next to *measured* GK space on the adversarial stream.
//!
//! Expected shape: the trivial and Hung–Ting lower bounds are flat in N;
//! this paper's bound grows with log εN and overtakes Hung–Ting exactly
//! at N = 1/ε²; measured GK tracks the new bound's slope from below the
//! GK-upper shape; q-digest sits flat once N ≫ |U|.
//!
//! Run: `cargo run -p cqs-bench --release --bin bounds_landscape`

use cqs_bench::{attack, emit, f1, Target};
use cqs_core::bounds::{
    crossover_vs_hung_ting, cv_lower, cv_lower_concrete, hung_ting_lower, kll_upper, mrl_upper,
    qdigest_upper, trivial_lower,
};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() {
    let eps = Eps::from_inverse(64);
    println!(
        "eps = {eps}; Hung–Ting crossover at N = 1/eps^2 = {}",
        crossover_vs_hung_ting(eps)
    );

    let mut t = Table::new(&[
        "N",
        "trivial",
        "hung-ting",
        "CV20(shape)",
        "CV20(concrete)",
        "gk-measured",
        "mrl-shape",
        "qdigest(|U|=2^32)",
        "kll(d=1e-6)",
    ]);
    for k in 3..=10u32 {
        let n = eps.stream_len(k);
        let measured = attack(eps, k, Target::Gk).max_stored;
        t.row(&[
            &n.to_string(),
            &f1(trivial_lower(eps)),
            &f1(hung_ting_lower(eps)),
            &f1(cv_lower(eps, n)),
            &f1(cv_lower_concrete(eps, n)),
            &measured.to_string(),
            &f1(mrl_upper(eps, n)),
            &f1(qdigest_upper(eps, 32)),
            &f1(kll_upper(eps, 1e-6)),
        ]);
    }
    emit(
        "Bound landscape at eps = 1/64 (items; constants elided except CV-concrete)",
        &t,
        "bounds_landscape.csv",
    );
    println!("\nreading guide: CV20(shape) passes hung-ting at N = 4096 and keeps growing —");
    println!("that growth is what rules out f(eps)·o(log N) algorithms; flat rows are the");
    println!("bounds the paper subsumed (trivial, HT) or that escape the model (q-digest, KLL).");
}
