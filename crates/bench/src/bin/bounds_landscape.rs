//! The space-bound landscape (Section 1.1 of the paper, as a table):
//! every bound the paper positions itself against, evaluated over N,
//! next to *measured* GK space on the adversarial stream.
//!
//! Expected shape: the trivial and Hung–Ting lower bounds are flat in N;
//! this paper's bound grows with log εN and overtakes Hung–Ting exactly
//! at N = 1/ε²; measured GK tracks the new bound's slope from below the
//! GK-upper shape; q-digest sits flat once N ≫ |U|.
//!
//! The measured column is one adversary run per row; rows fan out over
//! the `cqs_bench::exec` pool and come back in input order.
//!
//! Run: `cargo run -p cqs-bench --release --bin bounds_landscape`
//!      `[-- --jobs N]`

use std::process::ExitCode;

use cqs_bench::exec::{default_jobs, items_per_sec, parse_jobs, run_cells, CellOutcome};
use cqs_bench::{emit, f1, try_attack, Target};
use cqs_core::bounds::{
    crossover_vs_hung_ting, cv_lower, cv_lower_concrete, hung_ting_lower, kll_upper, mrl_upper,
    qdigest_upper, trivial_lower,
};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--jobs" => match args.next() {
                Some(v) => parse_jobs(&v).map(|j| jobs = j),
                None => Err("--jobs needs a value".into()),
            },
            other => Err(format!("unknown argument: {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("bounds_landscape: {e}");
            return ExitCode::FAILURE;
        }
    }

    let eps = Eps::from_inverse(64);
    println!(
        "eps = {eps}; Hung–Ting crossover at N = 1/eps^2 = {}",
        crossover_vs_hung_ting(eps)
    );

    let ks: Vec<u32> = (3..=10).collect();
    let measured = run_cells(
        &ks,
        jobs,
        |_, &k| try_attack(eps, k, Target::Gk).map(|rep| rep.max_stored),
        |c| {
            let k = ks[c.index];
            let n = eps.stream_len(k);
            eprintln!(
                "[landscape {}/{}] k={k} N={n} {} {:.0} items/s ({:.2}s)",
                c.finished,
                c.total,
                match c.outcome {
                    CellOutcome::Done(Ok(_)) => "completed",
                    CellOutcome::Done(Err(_)) => "skipped",
                    CellOutcome::Panicked(_) => "panicked",
                },
                items_per_sec(2 * n, c.elapsed),
                c.elapsed.as_secs_f64()
            );
        },
    );

    let mut t = Table::new(&[
        "N",
        "trivial",
        "hung-ting",
        "CV20(shape)",
        "CV20(concrete)",
        "gk-measured",
        "mrl-shape",
        "qdigest(|U|=2^32)",
        "kll(d=1e-6)",
    ]);
    for (&k, outcome) in ks.iter().zip(measured) {
        let n = eps.stream_len(k);
        // Skip-and-record: a failed measurement leaves a "-" cell, the
        // analytic columns still print.
        let measured_cell = match outcome {
            CellOutcome::Done(Ok(stored)) => stored.to_string(),
            CellOutcome::Done(Err(e)) => {
                eprintln!("[landscape] k={k}: {e}");
                "-".into()
            }
            CellOutcome::Panicked(msg) => {
                eprintln!("[landscape] k={k}: cell panicked: {msg}");
                "-".into()
            }
        };
        t.row(&[
            &n.to_string(),
            &f1(trivial_lower(eps)),
            &f1(hung_ting_lower(eps)),
            &f1(cv_lower(eps, n)),
            &f1(cv_lower_concrete(eps, n)),
            &measured_cell,
            &f1(mrl_upper(eps, n)),
            &f1(qdigest_upper(eps, 32)),
            &f1(kll_upper(eps, 1e-6)),
        ]);
    }
    emit(
        "Bound landscape at eps = 1/64 (items; constants elided except CV-concrete)",
        &t,
        "bounds_landscape.csv",
    );
    println!("\nreading guide: CV20(shape) passes hung-ting at N = 4096 and keeps growing —");
    println!("that growth is what rules out f(eps)·o(log N) algorithms; flat rows are the");
    println!("bounds the paper subsumed (trivial, HT) or that escape the model (q-digest, KLL).");
    cqs_bench::exit_status()
}
