//! F1 — Figure 1 of the paper: the largest-gap computation on restricted
//! item arrays.
//!
//! Recreates the figure's exact configuration: two indistinguishable
//! streams of 14 items inside the current intervals, of which the
//! summary stores the items of rank 1, 6, 11 and 14 (the boundary items
//! ℓ and r count as restricted-array entries even where the summary has
//! discarded them). The largest gap has size 5; the paper highlights the
//! copy between `I'_π[2]` and `I'_ϱ[3]` and notes an equal-sized gap between
//! the first pair — ties are broken arbitrarily.
//!
//! Run: `cargo run -p cqs-bench --release --bin fig1_gap_illustration`

use cqs_bench::emit;
use cqs_core::gap::compute_gap;
use cqs_core::refine::refine_intervals;
use cqs_core::state::StreamState;
use cqs_core::{ComparisonSummary, Endpoint, Interval, Item};
use cqs_streams::Table;
use cqs_universe::generate_increasing;

/// A summary scripted to store exactly the items at fixed arrival
/// positions — the hypothetical D of the figure.
struct ScriptedSummary {
    keep_arrivals: Vec<u64>,
    stored: Vec<Item>,
    n: u64,
}

impl ScriptedSummary {
    fn new(keep_arrivals: &[u64]) -> Self {
        ScriptedSummary {
            keep_arrivals: keep_arrivals.to_vec(),
            stored: Vec::new(),
            n: 0,
        }
    }
}

impl ComparisonSummary<Item> for ScriptedSummary {
    fn insert(&mut self, item: Item) {
        if self.keep_arrivals.contains(&self.n) {
            let pos = self.stored.partition_point(|x| *x <= item);
            self.stored.insert(pos, item);
        }
        self.n += 1;
    }

    fn item_array(&self) -> Vec<Item> {
        self.stored.clone()
    }

    fn stored_count(&self) -> usize {
        self.stored.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, _r: u64) -> Option<Item> {
        self.stored.first().cloned()
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn main() -> std::process::ExitCode {
    // 14 items arrive in increasing order, so arrival position = rank−1.
    // Stored ranks 1, 6, 11, 14 → arrivals 0, 5, 10, 13. The interval
    // endpoints of the figure are the rank-1 and rank-14 items; to make
    // ℓ_π/r_π genuine interval boundaries we treat the stream's first
    // and last items as the current interval.
    let kept = [0u64, 5, 10, 13];
    let items = generate_increasing(&Interval::whole(), 14);
    let mut pi = StreamState::new(ScriptedSummary::new(&kept));
    let mut rho = StreamState::new(ScriptedSummary::new(&kept));
    for it in &items {
        pi.push(it.clone());
        rho.push(it.clone());
    }
    let iv = Interval::open(items[0].clone(), items[13].clone());

    // Restricted arrays: boundaries + stored items strictly inside.
    let arr_pi = pi.restricted_item_array(&iv);
    let arr_rho = rho.restricted_item_array(&iv);

    let mut t = Table::new(&["i", "I'_pi rank", "I'_rho rank", "gap to I'_rho[i+1]"]);
    for i in 0..arr_pi.len() {
        let rp = pi.rank_in(&iv, &arr_pi[i]);
        let rr = rho.rank_in(&iv, &arr_rho[i]);
        let gap = if i + 1 < arr_rho.len() {
            (rho.rank_in(&iv, &arr_rho[i + 1]) - rp).to_string()
        } else {
            "-".into()
        };
        t.row(&[&(i + 1).to_string(), &rp.to_string(), &rr.to_string(), &gap]);
    }

    let gap = compute_gap(&pi, &rho, &iv, &iv);
    emit(
        "Figure 1 — largest gap in restricted item arrays",
        &t,
        "fig1_gap_illustration.csv",
    );
    println!(
        "\nrestricted arrays have {} entries; ranks are {:?} (paper: [1, 6, 11, 14])",
        gap.restricted_len,
        arr_pi
            .iter()
            .map(|e| pi.rank_in(&iv, e))
            .collect::<Vec<_>>()
    );
    println!(
        "largest gap = {} at i = {} (paper: 5; two maximal gaps exist, ties broken arbitrarily)",
        gap.gap,
        gap.index + 1
    );

    let refinement = refine_intervals(&pi, &rho, &iv, &iv);
    let show = |e: &Endpoint| match e {
        Endpoint::Finite(it) => format!("rank {}", pi.rank(it)),
        other => format!("{other:?}"),
    };
    println!(
        "new interval for pi : ({}, {})",
        show(refinement.iv_pi.lo()),
        show(refinement.iv_pi.hi())
    );
    println!(
        "new interval for rho: ({}, {})",
        show(refinement.iv_rho.lo()),
        show(refinement.iv_rho.hi())
    );
    assert_eq!(gap.gap, 5, "figure's configuration must yield gap 5");
    cqs_bench::exit_status()
}
