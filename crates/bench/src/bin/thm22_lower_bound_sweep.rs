//! T1 — Theorem 2.2: the main lower bound, measured.
//!
//! Sweeps ε and k = log₂(εN), running the adversarial construction
//! against banded GK, greedy GK and fixed-seed KLL (a legally
//! derandomized randomized sketch). For every run it reports:
//!
//! * the final gap vs the Lemma 3.4 ceiling 2εN (a correct summary must
//!   stay under it);
//! * the peak item-array size vs Theorem 2.2's bound c·(k+2)/(4ε);
//! * GK's own upper-bound shape (1/ε)·(log₂ εN + 1) for context;
//! * Claim 1 / Lemma 5.2 violations across all 2^k − 1 recursion nodes.
//!
//! Expected shape (the paper's content): stored space grows linearly in
//! k at fixed ε and linearly in 1/ε at fixed k, sandwiched between the
//! lower-bound line and the GK upper-bound line.
//!
//! The grid cells are independent adversary runs, so they fan out over
//! the `cqs_bench::exec` worker pool; rows come back in input order, so
//! the table and its CSV mirror are byte-identical for every `--jobs`.
//!
//! With `--resume <dir>` progress persists to `<dir>/thm22.ckpt` after
//! every cell and a rerun reuses every intact stored result, so a
//! crashed sweep picks up where it left off and still emits the exact
//! CSV an uninterrupted run would (corrupt checkpoints are rejected
//! with typed verdicts and the affected cells replayed). The CI
//! recovery leg injects crashes via `CQS_CRASH_AFTER_CELLS=k` (exit
//! code 86 after k freshly persisted cells).
//!
//! With `--large-n` the grid switches to interval-compressed
//! (`StreamRepr::Implicit`) cells at ε = 1/1024 climbing to
//! N = 1024·2¹⁷ ≈ 1.34×10⁸ — past where the materialized treap's u32
//! per-item arena tops out — and the CSV mirror goes to
//! `results/thm22_large_n_sweep.csv`. `--large-n --smoke` is the single
//! N ≈ 1.34e8 cell the CI crash/resume leg byte-diffs.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm22_lower_bound_sweep`
//!      `[-- [--jobs N] [--smoke] [--large-n] [--resume DIR]]`
//! (`--jobs 0` or absent = available parallelism; `--smoke` runs a
//! small CI grid. Set `CQS_RESULTS_DIR` to redirect the CSV mirror.)

use std::path::PathBuf;
use std::process::ExitCode;

use cqs_bench::checkpoint::{crash_policy_from_env, CheckpointConfig, CrashPolicy};
use cqs_bench::emit;
use cqs_bench::exec::{default_jobs, parse_jobs};
use cqs_bench::sweeps::{
    thm22_full_grid, thm22_large_n_grid, thm22_large_n_smoke_grid, thm22_smoke_grid, thm22_sweep,
    thm22_sweep_checkpointed, Thm22Sweep, Thm22SweepRun,
};

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut smoke = false;
    let mut large_n = false;
    let mut resume: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--jobs" => match args.next() {
                Some(v) => parse_jobs(&v).map(|j| jobs = j),
                None => Err("--jobs needs a value".into()),
            },
            "--smoke" => {
                smoke = true;
                Ok(())
            }
            "--large-n" => {
                large_n = true;
                Ok(())
            }
            "--resume" => match args.next() {
                Some(dir) => {
                    resume = Some(PathBuf::from(dir));
                    Ok(())
                }
                None => Err("--resume needs a checkpoint directory".into()),
            },
            other => Err(format!("unknown argument: {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("thm22_lower_bound_sweep: {e}");
            return ExitCode::FAILURE;
        }
    }

    let (cells, grid_name) = match (large_n, smoke) {
        // The CI crash/resume leg: one interval-compressed N ≈ 1.34e8
        // cell, cheap enough (in cell count, not wall-clock) to byte-
        // diff a crashed-and-resumed run against an uninterrupted one.
        (true, true) => (thm22_large_n_smoke_grid(), " (large-N smoke cell)"),
        (true, false) => (thm22_large_n_grid(), " (large-N grid)"),
        (false, true) => (thm22_smoke_grid(), " (smoke grid)"),
        (false, false) => (thm22_full_grid(), ""),
    };
    eprintln!(
        "[thm22] {} cells on {} worker(s){}",
        cells.len(),
        jobs,
        grid_name
    );
    let sweep = match resume {
        None => thm22_sweep(&cells, jobs, true),
        Some(dir) => {
            let mut cfg = CheckpointConfig::in_dir(&dir, "thm22");
            cfg.crash = match crash_policy_from_env() {
                Ok(policy) => policy,
                Err(e) => {
                    eprintln!("thm22_lower_bound_sweep: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_checkpointed(&cells, jobs, &cfg) {
                Some(sweep) => sweep,
                None => return ExitCode::FAILURE,
            }
        }
    };

    if large_n {
        emit(
            "Theorem 2.2 — large-N sweep (interval-compressed streams, N up to ~1.34e8)",
            &sweep.table,
            "thm22_large_n_sweep.csv",
        );
    } else {
        emit(
            "Theorem 2.2 — lower-bound sweep (space vs c(k+2)/(4eps) on adversarial streams)",
            &sweep.table,
            "thm22_lower_bound_sweep.csv",
        );
    }
    println!(
        "\nevery correct run met the Theorem 2.2 bound: {}",
        if sweep.all_ok {
            "YES"
        } else {
            "NO (investigate!)"
        }
    );
    if !sweep.skipped.is_empty() {
        println!("\nskipped {} config(s):", sweep.skipped.len());
        for s in &sweep.skipped {
            println!("  {s}");
        }
    }
    cqs_bench::exit_status()
}

fn run_checkpointed(
    cells: &[cqs_bench::sweeps::Thm22Cell],
    jobs: usize,
    cfg: &CheckpointConfig,
) -> Option<Thm22Sweep> {
    if let CrashPolicy::Exit(k) = cfg.crash {
        eprintln!("[thm22] crash injection armed: exiting after {k} freshly persisted cells");
    }
    let (run, resume) = thm22_sweep_checkpointed(cells, jobs, true, cfg);
    if resume.reused > 0 {
        eprintln!(
            "[thm22] resumed: {}/{} cells reused from {}",
            resume.reused,
            resume.total,
            cfg.path.display()
        );
    }
    for ev in &resume.events {
        eprintln!("[thm22] recovery: {ev}");
    }
    match run {
        Thm22SweepRun::Complete(sweep) => Some(sweep),
        Thm22SweepRun::Halted { completed } => {
            eprintln!("[thm22] halted after {completed} cells (in-process crash injection)");
            None
        }
    }
}
