//! T1 — Theorem 2.2: the main lower bound, measured.
//!
//! Sweeps ε and k = log₂(εN), running the adversarial construction
//! against banded GK, greedy GK and fixed-seed KLL (a legally
//! derandomized randomized sketch). For every run it reports:
//!
//! * the final gap vs the Lemma 3.4 ceiling 2εN (a correct summary must
//!   stay under it);
//! * the peak item-array size vs Theorem 2.2's bound c·(k+2)/(4ε);
//! * GK's own upper-bound shape (1/ε)·(log₂ εN + 1) for context;
//! * Claim 1 / Lemma 5.2 violations across all 2^k − 1 recursion nodes.
//!
//! Expected shape (the paper's content): stored space grows linearly in
//! k at fixed ε and linearly in 1/ε at fixed k, sandwiched between the
//! lower-bound line and the GK upper-bound line.
//!
//! The grid cells are independent adversary runs, so they fan out over
//! the `cqs_bench::exec` worker pool; rows come back in input order, so
//! the table and its CSV mirror are byte-identical for every `--jobs`.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm22_lower_bound_sweep`
//!      `[-- [--jobs N] [--smoke]]`
//! (`--jobs 0` or absent = available parallelism; `--smoke` runs a
//! small CI grid. Set `CQS_RESULTS_DIR` to redirect the CSV mirror.)

use std::process::ExitCode;

use cqs_bench::emit;
use cqs_bench::exec::{default_jobs, parse_jobs};
use cqs_bench::sweeps::{thm22_full_grid, thm22_smoke_grid, thm22_sweep};

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--jobs" => match args.next() {
                Some(v) => parse_jobs(&v).map(|j| jobs = j),
                None => Err("--jobs needs a value".into()),
            },
            "--smoke" => {
                smoke = true;
                Ok(())
            }
            other => Err(format!("unknown argument: {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("thm22_lower_bound_sweep: {e}");
            return ExitCode::FAILURE;
        }
    }

    let cells = if smoke {
        thm22_smoke_grid()
    } else {
        thm22_full_grid()
    };
    eprintln!(
        "[thm22] {} cells on {} worker(s){}",
        cells.len(),
        jobs,
        if smoke { " (smoke grid)" } else { "" }
    );
    let sweep = thm22_sweep(&cells, jobs, true);

    emit(
        "Theorem 2.2 — lower-bound sweep (space vs c(k+2)/(4eps) on adversarial streams)",
        &sweep.table,
        "thm22_lower_bound_sweep.csv",
    );
    println!(
        "\nevery correct run met the Theorem 2.2 bound: {}",
        if sweep.all_ok {
            "YES"
        } else {
            "NO (investigate!)"
        }
    );
    if !sweep.skipped.is_empty() {
        println!("\nskipped {} config(s):", sweep.skipped.len());
        for s in &sweep.skipped {
            println!("  {s}");
        }
    }
    cqs_bench::exit_status()
}
