//! T1 — Theorem 2.2: the main lower bound, measured.
//!
//! Sweeps ε and k = log₂(εN), running the adversarial construction
//! against banded GK, greedy GK and fixed-seed KLL (a legally
//! derandomized randomized sketch). For every run it reports:
//!
//! * the final gap vs the Lemma 3.4 ceiling 2εN (a correct summary must
//!   stay under it);
//! * the peak item-array size vs Theorem 2.2's bound c·(k+2)/(4ε);
//! * GK's own upper-bound shape (1/ε)·(log₂ εN + 1) for context;
//! * Claim 1 / Lemma 5.2 violations across all 2^k − 1 recursion nodes.
//!
//! Expected shape (the paper's content): stored space grows linearly in
//! k at fixed ε and linearly in 1/ε at fixed k, sandwiched between the
//! lower-bound line and the GK upper-bound line.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm22_lower_bound_sweep`

use cqs_bench::{emit, f1, try_attack, Target};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() {
    let mut t = Table::new(&[
        "eps",
        "k",
        "N",
        "target",
        "gap",
        "ceil(2epsN)",
        "peak|I|",
        "thm2.2",
        "peak/bound",
        "gk-upper",
        "claim1-viol",
        "lemma52-viol",
        "indist",
    ]);

    let mut all_ok = true;
    let mut skipped: Vec<String> = Vec::new();
    for inv in [32u64, 64, 128] {
        let eps = Eps::from_inverse(inv);
        for k in 4..=9u32 {
            for target in [Target::Gk, Target::GkGreedy, Target::KllFixed] {
                // Skip-and-record: one crashing or model-violating
                // config must not abort the remaining ~50 cells.
                let rep = match try_attack(eps, k, target) {
                    Ok(rep) => rep,
                    Err(e) => {
                        skipped.push(format!("eps={eps} k={k} {}: {e}", target.name()));
                        continue;
                    }
                };
                let gk_upper = inv as f64 * (k as f64 + 1.0);
                let ratio = rep.max_stored as f64 / rep.theorem22_bound;
                let correct = rep.final_gap <= rep.gap_ceiling;
                let met = rep.max_stored as f64 >= rep.theorem22_bound;
                if correct && !met {
                    all_ok = false;
                }
                t.row(&[
                    &eps.to_string(),
                    &k.to_string(),
                    &rep.n.to_string(),
                    &target.name(),
                    &rep.final_gap.to_string(),
                    &rep.gap_ceiling.to_string(),
                    &rep.max_stored.to_string(),
                    &f1(rep.theorem22_bound),
                    &f1(ratio),
                    &f1(gk_upper),
                    &rep.claim1_violations.to_string(),
                    &rep.lemma52_violations.to_string(),
                    &rep.equivalence_ok.to_string(),
                ]);
            }
        }
    }

    emit(
        "Theorem 2.2 — lower-bound sweep (space vs c(k+2)/(4eps) on adversarial streams)",
        &t,
        "thm22_lower_bound_sweep.csv",
    );
    println!(
        "\nevery correct run met the Theorem 2.2 bound: {}",
        if all_ok { "YES" } else { "NO (investigate!)" }
    );
    if !skipped.is_empty() {
        println!("\nskipped {} config(s):", skipped.len());
        for s in &skipped {
            println!("  {s}");
        }
    }
}
