//! F2 — Figure 2 of the paper: a worked run of the adversarial
//! construction with k = 3, ε = 1/6, N₃ = 48.
//!
//! The paper's figure shows a hypothetical summary; here the same
//! construction drives a real space-starved summary (capped greedy GK),
//! printing after each leaf the state Figure 2(a)–(d) illustrates: the
//! stream items of each stream on a rank line (`|` stored, `.`
//! forgotten), the largest gap in the current intervals, and the refined
//! intervals chosen for the next leaf.
//!
//! Run: `cargo run -p cqs-bench --release --bin fig2_construction_walkthrough`

use cqs_core::gap::compute_gap;
use cqs_core::model::ComparisonSummary;
use cqs_core::refine::refine_intervals;
use cqs_core::state::StreamState;
use cqs_core::{Endpoint, Eps, Interval, Item};
use cqs_gk::CappedGk;
use cqs_universe::generate_increasing;

type State = StreamState<CappedGk<Item>>;

fn rank_line(st: &State) -> String {
    let stored = st.summary.item_array();
    let n = st.len();
    let mut line = vec!['.'; n as usize];
    for it in &stored {
        line[(st.rank(it) - 1) as usize] = '|';
    }
    line.into_iter().collect()
}

fn show_iv(st: &State, iv: &Interval) -> String {
    let show = |e: &Endpoint| match e {
        Endpoint::Finite(it) => format!("rank {}", st.rank(it)),
        other => format!("{other:?}"),
    };
    format!("({}, {})", show(iv.lo()), show(iv.hi()))
}

fn leaf(pi: &mut State, rho: &mut State, eps: Eps, iv_pi: &Interval, iv_rho: &Interval) {
    let n = eps.leaf_items() as usize;
    let (a, b) = if iv_pi == iv_rho {
        let shared = generate_increasing(iv_pi, n);
        (shared.clone(), shared)
    } else {
        (
            generate_increasing(iv_pi, n),
            generate_increasing(iv_rho, n),
        )
    };
    for (x, y) in a.into_iter().zip(b) {
        pi.push(x);
        rho.push(y);
    }
}

fn main() {
    let eps = Eps::from_inverse(6); // the figure's ε = 1/6 (2/ε = 12 per leaf)
    let k = 3u32;
    let n_total = eps.stream_len(k);
    println!("Figure 2 walkthrough: eps = {eps}, k = {k}, N_{k} = {n_total}");
    println!("summary under attack: capped greedy GK (budget 6 items)\n");

    let mut pi: State = StreamState::new(CappedGk::new(eps.value(), 6));
    let mut rho: State = StreamState::new(CappedGk::new(eps.value(), 6));

    // Manual in-order walk of the k = 3 recursion tree (4 leaves, with
    // refinements at the internal nodes between them) — the same tree
    // cqs_core::Adversary walks, unrolled for printing.
    let whole = Interval::whole();

    // Leaf 1 (panel a).
    leaf(&mut pi, &mut rho, eps, &whole, &whole);
    println!("(a) after {:2} items:", pi.len());
    println!("    pi : {}", rank_line(&pi));
    println!("    rho: {}", rank_line(&rho));
    let r1 = refine_intervals(&pi, &rho, &whole, &whole);
    println!(
        "    largest gap in (-inf, +inf): {} at restricted index {}",
        r1.gap.gap,
        r1.gap.index + 1
    );
    println!("    new interval for pi : {}", show_iv(&pi, &r1.iv_pi));
    println!("    new interval for rho: {}\n", show_iv(&rho, &r1.iv_rho));

    // Leaf 2 (panel b) — then back at the root, refine on the whole line.
    leaf(&mut pi, &mut rho, eps, &r1.iv_pi, &r1.iv_rho);
    println!("(b) after {:2} items:", pi.len());
    println!("    pi : {}", rank_line(&pi));
    println!("    rho: {}", rank_line(&rho));
    let g_left = compute_gap(&pi, &rho, &whole, &whole);
    println!(
        "    largest gap in (-inf, +inf): {} (bound 2*eps*N_2 = {})",
        g_left.gap,
        eps.gap_bound(eps.stream_len(2))
    );
    let r2 = refine_intervals(&pi, &rho, &whole, &whole);
    println!("    new interval for pi : {}", show_iv(&pi, &r2.iv_pi));
    println!("    new interval for rho: {}\n", show_iv(&rho, &r2.iv_rho));

    // Leaf 3 (panel c) — the right subtree's own internal refinement.
    leaf(&mut pi, &mut rho, eps, &r2.iv_pi, &r2.iv_rho);
    println!("(c) after {:2} items:", pi.len());
    println!("    pi : {}", rank_line(&pi));
    println!("    rho: {}", rank_line(&rho));
    let g3 = compute_gap(&pi, &rho, &r2.iv_pi, &r2.iv_rho);
    println!("    largest gap inside current intervals: {}", g3.gap);
    let r3 = refine_intervals(&pi, &rho, &r2.iv_pi, &r2.iv_rho);
    println!("    new interval for pi : {}", show_iv(&pi, &r3.iv_pi));
    println!("    new interval for rho: {}\n", show_iv(&rho, &r3.iv_rho));

    // Leaf 4 (panel d) — construction complete.
    leaf(&mut pi, &mut rho, eps, &r3.iv_pi, &r3.iv_rho);
    println!("(d) after {:2} items (construction complete):", pi.len());
    println!("    pi : {}", rank_line(&pi));
    println!("    rho: {}", rank_line(&rho));
    let final_gap = compute_gap(&pi, &rho, &whole, &whole);
    let ceiling = eps.gap_bound(n_total);
    println!(
        "\nfinal gap(pi, rho) = {} vs Lemma 3.4 ceiling 2*eps*N = {}",
        final_gap.gap, ceiling
    );
    println!(
        "stored items: {} of {} seen",
        pi.summary.stored_count(),
        pi.len()
    );
    if final_gap.gap > ceiling {
        println!("=> the capped summary has blown the correctness ceiling: some quantile query must fail (see lemma34_failure_witness).");
    } else {
        println!("=> gap within ceiling: the summary paid with space instead.");
    }
    assert_eq!(pi.len(), n_total);
}
