//! Convenience driver: runs every experiment binary in DESIGN.md's index
//! in sequence (the exact set EXPERIMENTS.md is generated from).
//!
//! Run: `cargo run -p cqs-bench --release --bin run_all_experiments`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig1_gap_illustration",
    "fig2_construction_walkthrough",
    "thm22_lower_bound_sweep",
    "lemma34_failure_witness",
    "lemma52_space_gap_audit",
    "gk_upper_bound_profile",
    "thm61_median_reduction",
    "thm62_rank_lower_bound",
    "thm64_randomized_reduction",
    "thm65_biased_phases",
    "summary_comparison_table",
    "offline_optimal_summary",
    "bounds_landscape",
    "ablation_gk_variants",
    "ablation_adversary_ties",
    "ablation_kll_decay",
    "constant_factor_fit",
    "recursion_tree_dump",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures: Vec<String> = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        // Skip-and-record: a binary that fails to launch or exits
        // nonzero is logged and the rest of the suite still runs.
        match Command::new(exe_dir.join(name)).status() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("{name} (exit {status})")),
            Err(e) => failures.push(format!("{name} (failed to launch: {e})")),
        }
    }
    println!("\n================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; CSVs in results/",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
