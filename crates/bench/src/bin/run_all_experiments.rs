//! Convenience driver: runs every experiment binary in DESIGN.md's index
//! in sequence (the exact set EXPERIMENTS.md is generated from).
//!
//! The binaries themselves run one after another (their stdout tables
//! would interleave otherwise), but `--jobs N` is forwarded to the
//! parallel-aware sweeps so each of them fans its cell grid out over N
//! workers. Experiment binaries exit nonzero when any `results/` CSV
//! mirror fails to write (see `cqs_bench::exit_status`), so a sweep
//! with missing artifacts is reported as a failure here, not silently
//! green-lit.
//!
//! Run: `cargo run -p cqs-bench --release --bin run_all_experiments`
//!      `[-- --jobs N]`

use std::process::{Command, ExitCode};

use cqs_bench::exec::{default_jobs, parse_jobs};

const EXPERIMENTS: &[&str] = &[
    "fig1_gap_illustration",
    "fig2_construction_walkthrough",
    "thm22_lower_bound_sweep",
    "lemma34_failure_witness",
    "lemma52_space_gap_audit",
    "gk_upper_bound_profile",
    "thm61_median_reduction",
    "thm62_rank_lower_bound",
    "thm64_randomized_reduction",
    "thm65_biased_phases",
    "summary_comparison_table",
    "offline_optimal_summary",
    "bounds_landscape",
    "ablation_gk_variants",
    "ablation_adversary_ties",
    "ablation_kll_decay",
    "constant_factor_fit",
    "recursion_tree_dump",
];

/// The binaries that accept `--jobs N` (the rest take no arguments).
const PARALLEL_AWARE: &[&str] = &["thm22_lower_bound_sweep", "bounds_landscape"];

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--jobs" => match args.next() {
                Some(v) => parse_jobs(&v).map(|j| jobs = j),
                None => Err("--jobs needs a value".into()),
            },
            other => Err(format!("unknown argument: {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("run_all_experiments: {e}");
            return ExitCode::FAILURE;
        }
    }

    let exe_dir = match std::env::current_exe() {
        Ok(path) => match path.parent() {
            Some(dir) => dir.to_path_buf(),
            None => {
                eprintln!("run_all_experiments: executable path has no parent directory");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("run_all_experiments: cannot resolve own path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures: Vec<String> = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        let mut cmd = Command::new(exe_dir.join(name));
        if PARALLEL_AWARE.contains(name) {
            cmd.arg("--jobs").arg(jobs.to_string());
        }
        // Skip-and-record: a binary that fails to launch or exits
        // nonzero is logged and the rest of the suite still runs.
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("{name} (exit {status})")),
            Err(e) => failures.push(format!("{name} (failed to launch: {e})")),
        }
    }
    println!("\n================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; CSVs in results/",
            EXPERIMENTS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("FAILED: {failures:?}");
        ExitCode::FAILURE
    }
}
