//! T10 — the offline baseline of Section 1: ⌈1/(2ε)⌉ items are
//! sufficient and necessary.
//!
//! Sufficiency: build the offline summary over sorted data and measure
//! its worst-case rank error — always ≤ εN with exactly ⌈1/(2ε)⌉ items.
//! Necessity: for stored-rank sets one item smaller, exhibit an
//! uncovered quantile (a hole of width > 2ε).
//!
//! Run: `cargo run -p cqs-bench --release --bin offline_optimal_summary`

use cqs_bench::emit;
use cqs_core::offline::{uncovered_quantile, OfflineSummary};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let n = 100_000u64;
    let data: Vec<u64> = (1..=n).collect();

    let mut t = Table::new(&[
        "eps",
        "ceil(1/2eps)",
        "stored",
        "max-rank-err",
        "eps*N",
        "within",
        "hole-with-one-less",
    ]);
    for inv in [8u64, 16, 32, 64, 128, 256] {
        let eps = Eps::from_inverse(inv);
        let s = OfflineSummary::build(&data, eps);
        let optimal = inv.div_ceil(2);

        // Necessity: evenly spaced rank sets of size optimal−1 must
        // leave an uncovered quantile.
        let fewer = optimal - 1;
        let ranks: Vec<u64> = (1..=fewer).map(|j| j * n / fewer).collect();
        let hole = uncovered_quantile(&ranks, n, eps);

        let max_err = s.max_rank_error();
        // When εN is fractional, no placement of ⌈1/(2ε)⌉ integer ranks
        // can cover [1, N] with error ⌊εN⌋ (⌈1/2ε⌉·(2⌊εN⌋+1) < N), so
        // the achievable optimum is ⌈εN⌉ — which is what we check.
        let within = max_err <= n.div_ceil(eps.inverse());
        t.row(&[
            &eps.to_string(),
            &optimal.to_string(),
            &s.stored_count().to_string(),
            &max_err.to_string(),
            &eps.rank_budget(n).to_string(),
            &within.to_string(),
            &hole
                .map(|p| format!("phi={p:.4}"))
                .unwrap_or_else(|| "none(!)".into()),
        ]);
    }

    emit(
        "Offline optimum — ceil(1/2eps) items suffice; one fewer leaves a hole",
        &t,
        "offline_optimal_summary.csv",
    );
    cqs_bench::exit_status()
}
