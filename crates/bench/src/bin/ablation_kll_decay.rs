//! Ablation A3 — KLL compactor-capacity decay ratio.
//!
//! KLL's analysis fixes the geometric decay at 2/3; decay 1.0 collapses
//! the design into equal-capacity buffers (structurally MRL-like). This
//! ablation sweeps the ratio and measures space and worst rank error on
//! a shuffled stream — the expected U-shape: small decay shrinks low
//! levels (less space, more error from early aggressive compaction),
//! decay 1.0 wastes space on low levels that hold the least information.
//!
//! Run: `cargo run -p cqs-bench --release --bin ablation_kll_decay`

use cqs_bench::{drive_u64, emit, f1};
use cqs_kll::KllSketch;
use cqs_streams::{workload, Table, Workload};

fn main() -> std::process::ExitCode {
    let n = 200_000u64;
    let k = 256usize;
    let vals = workload(Workload::Shuffled, n, 31).expect("non-empty");

    let mut t = Table::new(&["decay", "k", "peak|I|", "max-rank-err", "err/(eps-equiv)"]);
    for decay in [0.5f64, 2.0 / 3.0, 0.8, 1.0] {
        // Average over a few seeds: a single randomized run is noisy.
        let seeds = [1u64, 2, 3, 4, 5];
        let mut peak = 0usize;
        let mut err_sum = 0u64;
        for &seed in &seeds {
            let mut s = KllSketch::with_decay(k, decay, seed);
            let stats = drive_u64(&mut s, &vals, 256);
            peak = peak.max(stats.peak_stored);
            err_sum += stats.max_rank_error;
        }
        let avg_err = err_sum as f64 / seeds.len() as f64;
        t.row(&[
            &format!("{decay:.3}"),
            &k.to_string(),
            &peak.to_string(),
            &f1(avg_err),
            &f1(avg_err / (n as f64 / k as f64)),
        ]);
    }

    emit(
        "Ablation — KLL capacity decay ratio (paper's choice: 0.667)",
        &t,
        "ablation_kll_decay.csv",
    );
    cqs_bench::exit_status()
}
