//! `perf_baseline` — the JSON perf baseline runner.
//!
//! Times (a) full adversary runs (`AdvStrategy` at ε ∈ {1/64, 1/256},
//! k up to 12) and (b) raw summary update throughput (per-item vs
//! sorted-run inserts), then records the numbers in
//! `BENCH_adversary.json` / `BENCH_summaries.json` at the workspace
//! root so every PR leaves a measured trajectory.
//!
//! ```text
//! cargo run -p cqs-bench --release --bin perf_baseline -- --phase pre_change
//! cargo run -p cqs-bench --release --bin perf_baseline -- --phase post_change --merge
//! cargo run -p cqs-bench --release --bin perf_baseline -- --smoke --out-dir target/bench-smoke
//! cargo run -p cqs-bench --release --bin perf_baseline -- --verify target/bench-smoke
//! cargo run -p cqs-bench --release --bin perf_baseline -- --large-n --merge
//! cargo run -p cqs-bench --release --bin perf_baseline -- --sharded --merge
//! ```
//!
//! `--large-n` switches the adversary phase (default phase name
//! `large_n`) to the interval-compressed scaling ladder — ε = 1/1024
//! with N climbing 10⁶ → 1.7×10⁷ → 1.3×10⁸ on implicit streams — and
//! records only `BENCH_adversary.json` (the summary workloads are
//! N-independent and would just be re-measured noise).
//!
//! `--merge` appends this invocation's runs to the existing files
//! (that is how before/after numbers end up side by side in one PR);
//! `--verify DIR` re-parses the files in DIR and checks the schema —
//! the CI smoke step runs exactly that.
//!
//! `--jobs N` fans the adversary configs out over the `cqs_bench::exec`
//! worker pool. The default is **1** (unlike the sweep binaries): this
//! binary's job is honest per-config timings, and concurrent runs
//! contend for cores. The JSON `runs` array is in config order for any
//! `--jobs`; only the interleaving of progress lines changes.
//!
//! `--resume DIR` checkpoints the adversary phase to `DIR/perf.ckpt`
//! after every timed config; a rerun reuses intact stored results and
//! replays the rest (corrupt checkpoints are rejected with typed
//! verdicts, never restored). `CQS_CRASH_AFTER_CELLS=k` injects a
//! mid-run crash (exit code 86) for the CI recovery leg.
//!
//! The summaries file also records a `snapshot_roundtrip` mode — the
//! cost of one `cqs-snapshot` serialize + restore cycle per summary —
//! so `--verify` guards against checkpointing regressing the hot path.
//!
//! A `sharded_ingest` mode times the `cqs-service` registry over a
//! threads × shards grid: the 1×1 cell is the unsharded baseline
//! (phase `pre_change`), the threaded 8-shard cells are the service
//! path (phase `post_change`), and every row records the host core
//! count so single-core hosts are not mistaken for scaling failures.
//! `--verify` requires the mode and its grid keys to be present.
//! `--sharded` runs the grid alone and records only
//! `BENCH_summaries.json` (that is how the committed sharded rows are
//! refreshed without re-timing every other section).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use cqs_bench::checkpoint::{
    crash_policy_from_env, grid_fingerprint, run_cells_checkpointed, CheckpointConfig,
    CheckpointedRun, CrashPolicy,
};
use cqs_bench::exec::{parse_jobs, run_cells, CellOutcome};
use cqs_bench::json::{parse, Json};
use cqs_bench::{attack_repr, Target};
use cqs_core::{ComparisonSummary, Eps, MergeableSummary, StreamRepr};
use cqs_gk::{GkSummary, GreedyGk};
use cqs_service::{parallel_ingest, QuantileRegistry, ServiceConfig};
use cqs_snapshot::{RestoreError, SnapshotRead, SnapshotWrite};
use cqs_streams::{workload, Workload};

const ADVERSARY_FILE: &str = "BENCH_adversary.json";
const SUMMARIES_FILE: &str = "BENCH_summaries.json";
const ADVERSARY_SCHEMA: &str = "cqs-bench/adversary/v1";
const SUMMARIES_SCHEMA: &str = "cqs-bench/summaries/v1";

struct Opts {
    phase: String,
    merge: bool,
    out_dir: PathBuf,
    smoke: bool,
    large_n: bool,
    sharded_only: bool,
    verify: Option<PathBuf>,
    jobs: usize,
    resume: Option<PathBuf>,
}

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        phase: String::new(),
        merge: false,
        out_dir: workspace_root(),
        smoke: false,
        large_n: false,
        sharded_only: false,
        verify: None,
        jobs: 1,
        resume: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--phase" => opts.phase = args.next().ok_or("--phase needs a value")?,
            "--merge" => opts.merge = true,
            "--smoke" => opts.smoke = true,
            "--large-n" => opts.large_n = true,
            "--sharded" => opts.sharded_only = true,
            "--jobs" => opts.jobs = parse_jobs(&args.next().ok_or("--jobs needs a value")?)?,
            "--out-dir" => {
                opts.out_dir = PathBuf::from(args.next().ok_or("--out-dir needs a value")?)
            }
            "--verify" => {
                opts.verify = Some(PathBuf::from(args.next().ok_or("--verify needs a value")?))
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(
                    args.next().ok_or("--resume needs a checkpoint directory")?,
                ))
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.phase.is_empty() {
        opts.phase = if opts.large_n {
            "large_n".into()
        } else if opts.smoke {
            "smoke".into()
        } else {
            "current".into()
        };
    }
    Ok(opts)
}

/// One timed adversary configuration.
fn adversary_run(phase: &str, target: Target, eps_inv: u64, k: u32, repr: StreamRepr) -> Json {
    let eps = Eps::from_inverse(eps_inv);
    let started = Instant::now();
    let report = attack_repr(eps, k, target, repr);
    let elapsed = started.elapsed();
    // Both streams are fed: the adversary appends N items to π and N to ϱ.
    let items = 2 * report.n;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let ips = items as f64 / secs;
    println!(
        "  adversary {:>10}  1/eps={:<4} k={:<2}  n={:>8}  {:>8.1} ms  {:>12.0} items/s",
        target.name(),
        eps_inv,
        k,
        report.n,
        secs * 1e3,
        ips
    );
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("target".into(), Json::Str(target.name())),
        (
            "repr".into(),
            Json::Str(
                match repr {
                    StreamRepr::Materialized => "materialized",
                    StreamRepr::Implicit => "implicit",
                }
                .into(),
            ),
        ),
        ("eps_inverse".into(), Json::Num(eps_inv as f64)),
        ("k".into(), Json::Num(k as f64)),
        ("n".into(), Json::Num(report.n as f64)),
        ("items".into(), Json::Num(items as f64)),
        ("elapsed_ms".into(), Json::Num(secs * 1e3)),
        ("items_per_sec".into(), Json::Num(ips)),
        ("final_gap".into(), Json::Num(report.final_gap as f64)),
        ("max_stored".into(), Json::Num(report.max_stored as f64)),
        (
            "max_label_depth".into(),
            Json::Num(report.max_label_depth as f64),
        ),
        ("equivalence_ok".into(), Json::Bool(report.equivalence_ok)),
    ])
}

/// One timed summary-throughput configuration. `chunk == 1` means plain
/// per-item inserts; larger chunks sort each window and feed it through
/// `insert_sorted_run` (the batched entry point under test).
fn summary_run<S: ComparisonSummary<u64>>(
    phase: &str,
    name: &str,
    mut summary: S,
    wl: Workload,
    values: &[u64],
    chunk: usize,
) -> Json {
    let mode = if chunk <= 1 { "per_item" } else { "sorted_run" };
    let started = Instant::now();
    if chunk <= 1 {
        for &v in values {
            summary.insert(v);
        }
    } else {
        let mut buf: Vec<u64> = Vec::with_capacity(chunk);
        for window in values.chunks(chunk) {
            buf.clear();
            buf.extend_from_slice(window);
            buf.sort_unstable();
            summary.insert_sorted_run(&buf);
        }
    }
    let elapsed = started.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let ips = values.len() as f64 / secs;
    println!(
        "  summary {:>10}  {:<9} {:<11} n={:>7}  {:>8.1} ms  {:>12.0} items/s",
        name,
        wl.name(),
        mode,
        values.len(),
        secs * 1e3,
        ips
    );
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("summary".into(), Json::Str(name.into())),
        ("workload".into(), Json::Str(wl.name().into())),
        ("mode".into(), Json::Str(mode.into())),
        ("chunk".into(), Json::Num(chunk as f64)),
        ("n".into(), Json::Num(values.len() as f64)),
        ("elapsed_ms".into(), Json::Num(secs * 1e3)),
        ("items_per_sec".into(), Json::Num(ips)),
        (
            "final_stored".into(),
            Json::Num(summary.stored_count() as f64),
        ),
    ])
}

/// One timed sharded-service ingest configuration: `values`, cut into
/// `batch`-sized batches, drive a fresh [`QuantileRegistry`] through
/// [`parallel_ingest`] with the given worker-thread count, then one
/// fold. Ingest wall time is the headline (items/s); the untimed fold
/// supplies the honest stored-count and composed-ε figures. Placement
/// is positional (batch `b` → shard `b mod S`), so `final_stored` and
/// `composed_eps` are byte-identical for every `threads` value — only
/// the timing columns move. `cores` records the host's available
/// parallelism: on a single-core host the threaded rows measure
/// scheduling overhead, not scaling, and the ≥4x target needs ≥8 cores.
///
/// The `threads = shards = 1` cell is tagged phase `pre_change` (the
/// unsharded ingest the service replaces); every other cell is
/// `post_change`. Both land in one invocation so they share machine
/// state, which is what makes the speedup column honest.
fn sharded_run(values: &[u64], batch: usize, shards: usize, threads: usize) -> Json {
    let phase = if shards == 1 && threads == 1 {
        "pre_change"
    } else {
        "post_change"
    };
    let batches: Vec<Vec<u64>> = values.chunks(batch).map(|c| c.to_vec()).collect();
    let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
        ServiceConfig {
            shards,
            stripes: 4,
            fold_cadence: u64::MAX,
        },
        || GkSummary::new(0.01),
    );
    let handle = reg.handle("bench");
    let started = Instant::now();
    let ingested = parallel_ingest(&handle, &batches, threads);
    let elapsed = started.elapsed();
    let folded = handle
        .folded()
        .expect("identically-built shards merge")
        .expect("non-empty stream");
    let composed = folded.eps_bound().unwrap_or(0.0);
    assert_eq!(ingested, values.len() as u64, "sharded ingest lost items");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let ips = values.len() as f64 / secs;
    println!(
        "  sharded {:>10}  threads={:<2} shards={:<2} n={:>7}  {:>8.1} ms  {:>12.0} items/s  (eps {:.3})",
        "gk", threads, shards, values.len(), secs * 1e3, ips, composed
    );
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("summary".into(), Json::Str("gk".into())),
        ("workload".into(), Json::Str("shuffled".into())),
        ("mode".into(), Json::Str("sharded_ingest".into())),
        ("chunk".into(), Json::Num(batch as f64)),
        ("threads".into(), Json::Num(threads as f64)),
        ("shards".into(), Json::Num(shards as f64)),
        ("cores".into(), Json::Num(cores as f64)),
        ("n".into(), Json::Num(values.len() as f64)),
        ("elapsed_ms".into(), Json::Num(secs * 1e3)),
        ("items_per_sec".into(), Json::Num(ips)),
        (
            "final_stored".into(),
            Json::Num(folded.stored_count() as f64),
        ),
        ("composed_eps".into(), Json::Num(composed)),
    ])
}

/// The sharded-ingest section: the threads × shards grid. The 1×1
/// cell is the unsharded ingest baseline (phase `pre_change`); the
/// threaded 8-shard cells are the service path (phase `post_change`)
/// — see [`sharded_run`].
fn sharded_section(smoke: bool) -> Vec<Json> {
    println!("== sharded service ingest ==");
    let (shard_n, shard_batch, grid): (u64, usize, &[(usize, usize)]) = if smoke {
        (5_000, 256, &[(1, 1), (4, 8)])
    } else {
        (400_000, 4096, &[(1, 1), (1, 8), (2, 8), (4, 8), (8, 8)])
    };
    let shard_values = workload(Workload::Shuffled, shard_n, 42).expect("n > 0");
    grid.iter()
        .map(|&(threads, shards)| sharded_run(&shard_values, shard_batch, shards, threads))
        .collect()
}

/// Prints the sharded-ingest speedup: the last `pre_change` row
/// (threads = shards = 1) against the best threaded row, the
/// acceptance figure for the sharded service.
fn report_sharded_speedup(runs: &[Json]) {
    let ips = |r: &Json| r.get("items_per_sec").and_then(Json::as_f64);
    let sharded: Vec<&Json> = runs
        .iter()
        .filter(|r| r.get("mode").and_then(Json::as_str) == Some("sharded_ingest"))
        .collect();
    let pre = sharded
        .iter()
        .filter(|r| r.get("phase").and_then(Json::as_str) == Some("pre_change"))
        .filter_map(|r| ips(r))
        .next_back();
    let post = sharded
        .iter()
        .filter(|r| r.get("phase").and_then(Json::as_str) == Some("post_change"))
        .filter_map(|r| ips(r))
        .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))));
    if let (Some(pre), Some(post)) = (pre, post) {
        println!(
            "  sharded speedup: {:>10.0} -> {:>10.0} items/s  ({:.2}x, 1x1 -> best threaded cell)",
            pre,
            post,
            post / pre
        );
    }
}

/// One timed snapshot/restore overhead configuration: the summary is
/// filled once, then round-tripped through the `cqs-snapshot` wire
/// format `rounds` times. Recorded as mode `snapshot_roundtrip` in the
/// summaries file so `--verify` can insist checkpointing stays off the
/// hot path's back.
fn snapshot_run<S>(phase: &str, name: &str, mut summary: S, values: &[u64], rounds: usize) -> Json
where
    S: ComparisonSummary<u64> + SnapshotWrite + SnapshotRead,
{
    for &v in values {
        summary.insert(v);
    }
    let mut bytes_len = 0usize;
    let started = Instant::now();
    for _ in 0..rounds {
        let bytes = summary.to_snapshot_bytes();
        bytes_len = bytes.len();
        let restored = S::from_snapshot_bytes(&bytes).expect("self-written snapshot restores");
        assert_eq!(restored.stored_count(), summary.stored_count());
    }
    let elapsed = started.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-9);
    // Items covered per second of snapshot+restore work: the honest
    // "how much stream does one checkpoint cycle cost" figure.
    let ips = (values.len() * rounds) as f64 / secs;
    println!(
        "  snapshot {:>9}  {:<9} {:<11} n={:>7}  {:>8.1} ms  {:>12.0} items/s  ({} bytes)",
        name,
        "roundtrip",
        "snapshot",
        values.len(),
        secs * 1e3,
        ips,
        bytes_len
    );
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("summary".into(), Json::Str(name.into())),
        ("workload".into(), Json::Str("shuffled".into())),
        ("mode".into(), Json::Str("snapshot_roundtrip".into())),
        ("chunk".into(), Json::Num(rounds as f64)),
        ("n".into(), Json::Num(values.len() as f64)),
        ("elapsed_ms".into(), Json::Num(secs * 1e3)),
        ("items_per_sec".into(), Json::Num(ips)),
        (
            "final_stored".into(),
            Json::Num(summary.stored_count() as f64),
        ),
        ("snapshot_bytes".into(), Json::Num(bytes_len as f64)),
    ])
}

/// Loads `path` (when merging) or starts a fresh document, appends
/// `new_runs` to its `runs` array, and writes it back.
fn write_runs(path: &Path, schema: &str, merge: bool, new_runs: Vec<Json>) -> Result<(), String> {
    let mut doc = if merge && path.exists() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if doc.get("schema").and_then(Json::as_str) != Some(schema) {
            return Err(format!(
                "{}: schema mismatch, refusing to merge",
                path.display()
            ));
        }
        doc
    } else {
        Json::Obj(vec![
            ("schema".into(), Json::Str(schema.into())),
            ("unit".into(), Json::Str("items_per_sec".into())),
            ("runs".into(), Json::Arr(Vec::new())),
        ])
    };
    match doc.get_mut("runs") {
        Some(Json::Arr(runs)) => runs.extend(new_runs),
        _ => return Err(format!("{}: no runs array", path.display())),
    }
    std::fs::write(path, doc.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("[json] {}", path.display());
    Ok(())
}

/// Prints pre→post speedups for adversary configs present in both
/// phases (the headline acceptance number lives here).
fn report_speedups(doc: &Json) {
    let Some(runs) = doc.get("runs").and_then(Json::as_arr) else {
        return;
    };
    let key = |r: &Json| {
        Some((
            r.get("target")?.as_str()?.to_string(),
            r.get("eps_inverse")?.as_f64()? as u64,
            r.get("k")?.as_f64()? as u32,
        ))
    };
    let ips_of = |r: &Json, phase: &str| {
        (r.get("phase")?.as_str()? == phase)
            .then(|| r.get("items_per_sec")?.as_f64())
            .flatten()
    };
    let mut seen: Vec<(String, u64, u32)> = Vec::new();
    for r in runs {
        let Some(k) = key(r) else { continue };
        if seen.contains(&k) {
            continue;
        }
        seen.push(k.clone());
        let pre = runs
            .iter()
            .filter_map(|r| (key(r)? == k).then(|| ips_of(r, "pre_change")).flatten())
            .next_back();
        let post = runs
            .iter()
            .filter_map(|r| (key(r)? == k).then(|| ips_of(r, "post_change")).flatten())
            .next_back();
        if let (Some(pre), Some(post)) = (pre, post) {
            println!(
                "  speedup {:>10}  1/eps={:<4} k={:<2}  {:>10.0} -> {:>10.0} items/s  ({:.2}x)",
                k.0,
                k.1,
                k.2,
                pre,
                post,
                post / pre
            );
        }
    }
}

/// `--verify`: re-parse the artifacts and check the schema the CI smoke
/// step (and any future tooling) depends on.
fn verify(dir: &Path) -> Result<(), String> {
    for (file, schema, required) in [
        (
            ADVERSARY_FILE,
            ADVERSARY_SCHEMA,
            &[
                "phase",
                "target",
                "eps_inverse",
                "k",
                "n",
                "elapsed_ms",
                "items_per_sec",
            ][..],
        ),
        (
            SUMMARIES_FILE,
            SUMMARIES_SCHEMA,
            &[
                "phase",
                "summary",
                "workload",
                "mode",
                "n",
                "elapsed_ms",
                "items_per_sec",
            ][..],
        ),
    ] {
        let path = dir.join(file);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse(&text).map_err(|e| format!("{}: parse error: {e}", path.display()))?;
        if doc.get("schema").and_then(Json::as_str) != Some(schema) {
            return Err(format!("{file}: missing or wrong schema (want {schema})"));
        }
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or(format!("{file}: missing runs array"))?;
        if runs.is_empty() {
            return Err(format!("{file}: runs array is empty"));
        }
        for (i, run) in runs.iter().enumerate() {
            for req in required {
                if run.get(req).is_none() {
                    return Err(format!("{file}: run {i} lacks key {req:?}"));
                }
            }
        }
        if file == SUMMARIES_FILE {
            if !runs
                .iter()
                .any(|r| r.get("mode").and_then(Json::as_str) == Some("snapshot_roundtrip"))
            {
                return Err(format!(
                    "{file}: no snapshot_roundtrip runs — snapshot overhead is not being tracked"
                ));
            }
            // Sharded rows additionally carry the grid coordinates; a
            // missing key here means the service benchmark quietly
            // stopped recording where on the grid a number came from.
            let sharded: Vec<&Json> = runs
                .iter()
                .filter(|r| r.get("mode").and_then(Json::as_str) == Some("sharded_ingest"))
                .collect();
            if sharded.is_empty() {
                return Err(format!(
                    "{file}: no sharded_ingest runs — service ingest is not being tracked"
                ));
            }
            for run in sharded {
                for req in ["threads", "shards", "cores", "composed_eps"] {
                    if run.get(req).is_none() {
                        return Err(format!("{file}: a sharded_ingest run lacks key {req:?}"));
                    }
                }
            }
        }
        println!("[verify] {} ok ({} runs)", path.display(), runs.len());
    }
    Ok(())
}

fn run(opts: &Opts) -> Result<(), String> {
    if let Some(dir) = &opts.verify {
        return verify(dir);
    }
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("{}: {e}", opts.out_dir.display()))?;
    let phase = opts.phase.as_str();

    if opts.sharded_only {
        // The sharded grid is a summaries-only phase (its rows name
        // their own pre/post phases); re-timing the adversary and
        // plain-summary sections alongside it would just append noise.
        let runs = sharded_section(opts.smoke);
        report_sharded_speedup(&runs);
        return write_runs(
            &opts.out_dir.join(SUMMARIES_FILE),
            SUMMARIES_SCHEMA,
            opts.merge,
            runs,
        );
    }

    println!("== adversary throughput (phase: {phase}) ==");
    use StreamRepr::{Implicit, Materialized};
    let adversary_configs: &[(Target, u64, u32, StreamRepr)] = if opts.large_n {
        // The interval-compressed scaling ladder: fixed ε = 1/1024,
        // N climbing 1.0e6 → 1.7e7 → 1.3e8. Items/s should stay flat
        // (the implicit representation is O(log)-per-operation in the
        // *fragment* count, not N) while max_stored traces the
        // Ω((1/ε)·log εN) shape.
        &[
            (Target::Gk, 1024, 10, Implicit),
            (Target::Gk, 1024, 14, Implicit),
            (Target::Gk, 1024, 17, Implicit),
        ]
    } else if opts.smoke {
        &[(Target::Gk, 8, 4, Materialized)]
    } else {
        &[
            (Target::Gk, 64, 8, Materialized),
            (Target::Gk, 64, 10, Materialized),
            (Target::Gk, 64, 12, Materialized),
            (Target::GkGreedy, 64, 12, Materialized),
            (Target::Gk, 256, 8, Materialized),
            (Target::Gk, 256, 10, Materialized),
            (Target::Gk, 256, 12, Materialized),
        ]
    };
    // Fan the configs over the worker pool; results come back in config
    // order, so the JSON runs array is deterministic for any --jobs.
    let outcomes = match &opts.resume {
        None => run_cells(
            adversary_configs,
            opts.jobs,
            |_, &(t, e, k, repr)| adversary_run(phase, t, e, k, repr),
            |_| {},
        ),
        Some(dir) => {
            // Checkpointed: completed configs persist as rendered JSON
            // rows and a rerun reuses every intact one. The render →
            // parse → render cycle is byte-stable, so resumed artifacts
            // match uninterrupted ones exactly (modulo nothing).
            let mut cfg = CheckpointConfig::in_dir(dir, "perf");
            cfg.crash = crash_policy_from_env()?;
            if let CrashPolicy::Exit(k) = cfg.crash {
                eprintln!("[perf] crash injection armed: exiting after {k} persisted configs");
            }
            let fp = grid_fingerprint(adversary_configs.iter().map(|(t, e, k, repr)| {
                // Materialized configs keep the historical fingerprint
                // text so old checkpoints stay restorable.
                match repr {
                    Materialized => format!("perf {} 1/{e} k={k} phase={phase}", t.name()),
                    Implicit => {
                        format!("perf {} 1/{e} k={k} phase={phase} repr=implicit", t.name())
                    }
                }
            }));
            let sweep = run_cells_checkpointed(
                adversary_configs,
                opts.jobs,
                &cfg,
                fp,
                |_, &(t, e, k, repr)| adversary_run(phase, t, e, k, repr),
                |json| Some(json.render().into_bytes()),
                |bytes| {
                    let text = std::str::from_utf8(bytes).map_err(|_| RestoreError::Malformed {
                        section: "CELL".to_string(),
                        detail: "stored run is not UTF-8".to_string(),
                    })?;
                    parse(text).map_err(|e| RestoreError::Malformed {
                        section: "CELL".to_string(),
                        detail: e,
                    })
                },
                |_| {},
            );
            if sweep.resume.reused > 0 {
                eprintln!(
                    "[perf] resumed: {}/{} adversary configs reused from {}",
                    sweep.resume.reused,
                    sweep.resume.total,
                    cfg.path.display()
                );
            }
            for ev in &sweep.resume.events {
                eprintln!("[perf] recovery: {ev}");
            }
            match sweep.run {
                CheckpointedRun::Complete(outcomes) => outcomes,
                CheckpointedRun::Halted { completed } => {
                    return Err(format!("adversary phase halted after {completed} configs"))
                }
            }
        }
    };
    let mut adversary_runs: Vec<Json> = Vec::with_capacity(adversary_configs.len());
    for (cfg, outcome) in adversary_configs.iter().zip(outcomes) {
        match outcome {
            CellOutcome::Done(json) => adversary_runs.push(json),
            CellOutcome::Panicked(msg) => {
                return Err(format!("adversary config {cfg:?} panicked: {msg}"))
            }
        }
    }

    if opts.large_n {
        // The large-N ladder is an adversary-only phase: re-timing the
        // 200k-item summary workloads would add nothing but noise to
        // BENCH_summaries.json.
        let adv_path = opts.out_dir.join(ADVERSARY_FILE);
        write_runs(&adv_path, ADVERSARY_SCHEMA, opts.merge, adversary_runs)?;
        let text = std::fs::read_to_string(&adv_path).map_err(|e| e.to_string())?;
        report_speedups(&parse(&text)?);
        return Ok(());
    }

    println!("== summary update throughput (phase: {phase}) ==");
    let (n, workloads): (u64, &[Workload]) = if opts.smoke {
        (5_000, &[Workload::Shuffled])
    } else {
        (
            200_000,
            &[Workload::Sorted, Workload::Shuffled, Workload::Zipf],
        )
    };
    let mut summary_runs = Vec::new();
    for &wl in workloads {
        let values = workload(wl, n, 42).expect("n > 0");
        for chunk in [1usize, 1024] {
            summary_runs.push(summary_run(
                phase,
                "gk",
                GkSummary::new(0.01),
                wl,
                &values,
                chunk,
            ));
            summary_runs.push(summary_run(
                phase,
                "gk-greedy",
                GreedyGk::new(0.01),
                wl,
                &values,
                chunk,
            ));
        }
    }

    println!("== snapshot/restore overhead (phase: {phase}) ==");
    let (snap_n, rounds) = if opts.smoke {
        (5_000, 5)
    } else {
        (200_000, 50)
    };
    let snap_values = workload(Workload::Shuffled, snap_n, 42).expect("n > 0");
    summary_runs.push(snapshot_run(
        phase,
        "gk",
        GkSummary::new(0.01),
        &snap_values,
        rounds,
    ));
    summary_runs.push(snapshot_run(
        phase,
        "gk-greedy",
        GreedyGk::new(0.01),
        &snap_values,
        rounds,
    ));

    summary_runs.extend(sharded_section(opts.smoke));
    report_sharded_speedup(&summary_runs);

    let adv_path = opts.out_dir.join(ADVERSARY_FILE);
    write_runs(&adv_path, ADVERSARY_SCHEMA, opts.merge, adversary_runs)?;
    write_runs(
        &opts.out_dir.join(SUMMARIES_FILE),
        SUMMARIES_SCHEMA,
        opts.merge,
        summary_runs,
    )?;

    let text = std::fs::read_to_string(&adv_path).map_err(|e| e.to_string())?;
    report_speedups(&parse(&text)?);
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            ExitCode::FAILURE
        }
    }
}
