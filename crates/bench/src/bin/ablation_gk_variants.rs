//! Ablation A1 — GK design choices: banded vs greedy COMPRESS, and the
//! compression cadence.
//!
//! Section 6 of the paper recalls the open problem of whether the
//! *greedy* merge keeps GK's O((1/ε)·log εN) bound; Luo et al. observed
//! it does better in practice. This ablation measures both variants'
//! peak space and wall time across compression periods, on a benign
//! shuffled stream and on the lower-bound adversarial stream.
//!
//! Expected: greedy ≈ banded in space (slightly smaller, faster);
//! compressing more often than 1/(2ε) buys little space for real time;
//! the adversarial stream costs both variants the same Θ((1/ε)·log εN).
//!
//! Run: `cargo run -p cqs-bench --release --bin ablation_gk_variants`

use std::time::Instant;

use cqs_bench::{emit, f1};
use cqs_core::adversary::run_adversary;
use cqs_core::{ComparisonSummary, Eps, Item};
use cqs_gk::{GkSummary, GreedyGk};
use cqs_streams::{workload, Table, Workload};

fn main() -> std::process::ExitCode {
    let n = 100_000u64;
    let eps = 0.005;
    let canonical = (1.0 / (2.0 * eps)) as u64; // 100
    let vals = workload(Workload::Shuffled, n, 21).expect("non-empty");

    let mut t = Table::new(&["variant", "period", "stream", "peak|I|", "final|I|", "ms"]);

    for period in [canonical / 4, canonical, canonical * 4] {
        // Banded.
        let start = Instant::now();
        let mut gk = GkSummary::with_compress_period(eps, period);
        let mut peak = 0usize;
        for &v in &vals {
            gk.insert(v);
            peak = peak.max(gk.stored_count());
        }
        t.row(&[
            "banded",
            &period.to_string(),
            "shuffled",
            &peak.to_string(),
            &gk.stored_count().to_string(),
            &f1(start.elapsed().as_secs_f64() * 1e3),
        ]);
        // Greedy.
        let start = Instant::now();
        let mut gg = GreedyGk::with_compress_period(eps, period);
        let mut peak = 0usize;
        for &v in &vals {
            gg.insert(v);
            peak = peak.max(gg.stored_count());
        }
        t.row(&[
            "greedy",
            &period.to_string(),
            "shuffled",
            &peak.to_string(),
            &gg.stored_count().to_string(),
            &f1(start.elapsed().as_secs_f64() * 1e3),
        ]);
    }

    // Adversarial stream, canonical period, both variants.
    let aeps = Eps::from_inverse(64);
    for k in [7u32, 9] {
        let start = Instant::now();
        let rep = run_adversary(aeps, k, || GkSummary::<Item>::new(aeps.value())).report();
        t.row(&[
            "banded",
            &((aeps.inverse() / 2).to_string()),
            &format!("adversarial k={k}"),
            &rep.max_stored.to_string(),
            &rep.stored_final.to_string(),
            &f1(start.elapsed().as_secs_f64() * 1e3),
        ]);
        let start = Instant::now();
        let rep = run_adversary(aeps, k, || GreedyGk::<Item>::new(aeps.value())).report();
        t.row(&[
            "greedy",
            &((aeps.inverse() / 2).to_string()),
            &format!("adversarial k={k}"),
            &rep.max_stored.to_string(),
            &rep.stored_final.to_string(),
            &f1(start.elapsed().as_secs_f64() * 1e3),
        ]);
    }

    emit(
        "Ablation — GK banded vs greedy, compression cadence",
        &t,
        "ablation_gk_variants.csv",
    );
    cqs_bench::exit_status()
}
