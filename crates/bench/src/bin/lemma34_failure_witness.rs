//! T2 — Lemma 3.4: a summary whose gap exceeds 2εN must fail a query,
//! and we exhibit the query.
//!
//! Space-capped GK summaries (budgets well below the Theorem 2.2 bound)
//! are driven through the adversarial construction; for each, the
//! witness extractor places ϕ·N mid-gap and measures the true rank error
//! of the answer on both indistinguishable streams. At least one side
//! must err beyond ⌊εN⌋.
//!
//! Run: `cargo run -p cqs-bench --release --bin lemma34_failure_witness`

use cqs_bench::{attack_capped_outcome, emit, f3};
use cqs_core::failure::{max_rank_error_on_grid, quantile_failure_witness};
use cqs_core::spacegap::theorem22_bound;
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 8u32;
    let n = eps.stream_len(k);
    println!(
        "eps = {eps}, k = {k}, N = {n}; Theorem 2.2 space bound = {:.1}",
        theorem22_bound(eps, k)
    );

    let mut t = Table::new(&[
        "budget",
        "gap",
        "ceil(2epsN)",
        "phi",
        "target-rank",
        "err-pi",
        "err-rho",
        "eps*N",
        "fails",
    ]);
    for budget in [8usize, 16, 32, 64] {
        let out = attack_capped_outcome(eps, k, budget);
        assert!(
            out.equivalence_error.is_none(),
            "{:?}",
            out.equivalence_error
        );
        match quantile_failure_witness(&out) {
            Some(w) => {
                t.row(&[
                    &budget.to_string(),
                    &w.gap.to_string(),
                    &w.gap_ceiling.to_string(),
                    &f3(w.phi),
                    &w.target_rank.to_string(),
                    &w.err_pi.to_string(),
                    &w.err_rho.to_string(),
                    &w.budget.to_string(),
                    &w.demonstrates_failure().to_string(),
                ]);
            }
            None => {
                // Gap stayed under the ceiling: the budget was actually
                // big enough for this (eps, k); verify accuracy on a grid
                // and report the space side instead.
                let worst = max_rank_error_on_grid(&out.pi, 256);
                t.row(&[
                    &budget.to_string(),
                    &out.final_gap().to_string(),
                    &eps.gap_bound(n).to_string(),
                    "-",
                    "-",
                    &worst.to_string(),
                    "-",
                    &eps.rank_budget(n).to_string(),
                    "false",
                ]);
            }
        }
    }

    emit(
        "Lemma 3.4 — failure witnesses for space-starved summaries",
        &t,
        "lemma34_failure_witness.csv",
    );
    cqs_bench::exit_status()
}
