//! T9 — the Luo-et-al.-style experimental comparison (Section 1.2
//! context).
//!
//! All summaries in the workspace on four workloads at two ε values:
//! peak space, worst observed rank error over a query grid, and update
//! throughput. q-digest runs on the same streams through its own
//! (non-comparison-based) integer interface — its flat-in-N space is
//! the escape hatch the lower bound proves impossible for
//! comparison-based structures.
//!
//! Run: `cargo run -p cqs-bench --release --bin summary_comparison_table`

use std::time::Instant;

use cqs_bench::{drive_u64, emit, f1, DriveStats};
use cqs_ckms::CkmsSummary;
use cqs_core::ComparisonSummary;
use cqs_gk::{GkSummary, GreedyGk};
use cqs_kll::{KllSketch, SampledKll};
use cqs_mrl::MrlSummary;
use cqs_qdigest::QDigest;
use cqs_sampling::ReservoirSummary;
use cqs_streams::{workload, Table, Workload};

const GRID: usize = 256;

fn bench_one<S, F>(t: &mut Table, name: &str, eps: f64, w: Workload, vals: &[u64], make: F)
where
    S: ComparisonSummary<u64>,
    F: FnOnce() -> S,
{
    let mut s = make();
    let start = Instant::now();
    let stats: DriveStats = drive_u64(&mut s, vals, GRID);
    let elapsed = start.elapsed();
    let ns_per = elapsed.as_nanos() as f64 / vals.len() as f64;
    let budget = (eps * vals.len() as f64).floor() as u64;
    t.row(&[
        name,
        &format!("{eps}"),
        w.name(),
        &vals.len().to_string(),
        &stats.peak_stored.to_string(),
        &stats.max_rank_error.to_string(),
        &budget.to_string(),
        &(stats.max_rank_error <= budget).to_string(),
        &f1(ns_per),
    ]);
}

fn main() -> std::process::ExitCode {
    let n = 200_000u64;
    let mut t = Table::new(&[
        "summary",
        "eps",
        "workload",
        "N",
        "peak|I|",
        "max-rank-err",
        "eps*N",
        "within-eps",
        "ns/insert",
    ]);

    for eps in [0.01f64, 0.001] {
        for w in [
            Workload::Sorted,
            Workload::Shuffled,
            Workload::Zipf,
            Workload::Clustered,
        ] {
            let vals = workload(w, n, 11).expect("non-empty");

            bench_one(&mut t, "gk", eps, w, &vals, || GkSummary::new(eps));
            bench_one(&mut t, "gk-greedy", eps, w, &vals, || GreedyGk::new(eps));
            bench_one(&mut t, "mrl", eps, w, &vals, || MrlSummary::new(eps, n));
            bench_one(&mut t, "kll", eps, w, &vals, || {
                KllSketch::with_seed(((2.0 / eps) as usize).max(8), 0xBEEF)
            });
            bench_one(&mut t, "kll-sampled", eps, w, &vals, || {
                SampledKll::with_seed(((2.0 / eps) as usize).max(8), 0xFADE)
            });
            bench_one(&mut t, "ckms", eps, w, &vals, || CkmsSummary::new(eps));
            bench_one(&mut t, "reservoir", eps, w, &vals, || {
                ReservoirSummary::with_seed(eps, 0.01, 0xFEED)
            });

            // q-digest via its own integer interface (values ≤ n+1).
            let log_u = 64 - (n + 2).leading_zeros();
            let mut qd = QDigest::new(log_u, eps);
            let start = Instant::now();
            let mut peak = 0usize;
            for &v in &vals {
                qd.insert(v);
                peak = peak.max(qd.node_count());
            }
            let ns_per = start.elapsed().as_nanos() as f64 / vals.len() as f64;
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let mut max_err = 0u64;
            for j in 0..=GRID as u64 {
                let r = (1 + j * (n - 1) / GRID as u64).clamp(1, n);
                let ans = qd.quantile(r as f64 / n as f64);
                let lo = sorted.partition_point(|&x| x < ans) as u64 + 1;
                let hi = sorted.partition_point(|&x| x <= ans) as u64;
                let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
                max_err = max_err.max(err);
            }
            let budget = (eps * n as f64).floor() as u64;
            t.row(&[
                "qdigest*",
                &format!("{eps}"),
                w.name(),
                &n.to_string(),
                &peak.to_string(),
                &max_err.to_string(),
                &budget.to_string(),
                &(max_err <= budget).to_string(),
                &f1(ns_per),
            ]);
        }
    }

    emit(
        "Summary comparison (Luo et al. style) — space / accuracy / throughput",
        &t,
        "summary_comparison_table.csv",
    );
    println!("\n(*) q-digest is not comparison-based: bounded integer universe, answers may be");
    println!("    non-stream values — the contrast the lower bound paper exempts explicitly.");
    cqs_bench::exit_status()
}
