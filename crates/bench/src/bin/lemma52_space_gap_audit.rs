//! T3 — Lemma 5.2 (space-gap inequality) and Claim 1, audited at every
//! node of the recursion tree.
//!
//! The paper's inductive statement is per-node, not just top-level:
//! every execution of AdvStrategy(k, …) must satisfy
//! S_k ≥ c·(log₂ g + 1)·(N_k/g − 1/(4ε)) and the gap recurrence
//! g ≥ g′ + g″ − 1. This binary aggregates the audit trail per level for
//! several targets and reports minimum slack (S_k − RHS) and violation
//! counts.
//!
//! For summaries whose |I| shrinks over time (banded GK after a
//! compress) the paper's model assumption "|I| never decreases" does not
//! hold verbatim; the instantaneous audit can then under-report S_k at
//! interior nodes. The aggregate below shows this stays a non-issue in
//! practice (zero violations), and the reference summaries (monotone
//! |I|) satisfy the inequality unconditionally.
//!
//! Run: `cargo run -p cqs-bench --release --bin lemma52_space_gap_audit`

use cqs_bench::{emit, f1};
use cqs_core::adversary::{run_adversary, AdversaryOutcome, NodeAudit};
use cqs_core::reference::DecimatedSummary;
use cqs_core::{ComparisonSummary, Eps, Item};
use cqs_gk::{CappedGk, GkSummary, GreedyGk};
use cqs_kll::KllSketch;
use cqs_streams::Table;

fn audit_rows(t: &mut Table, label: &str, eps: Eps, audits: &[NodeAudit]) {
    let max_level = audits.iter().map(|a| a.level).max().unwrap_or(1);
    for level in 1..=max_level {
        let at: Vec<&NodeAudit> = audits.iter().filter(|a| a.level == level).collect();
        let nodes = at.len();
        let claim1_viol = at.iter().filter(|a| !a.claim1_ok).count();
        let lemma52_viol = at.iter().filter(|a| !a.lemma52_ok).count();
        let min_slack = at
            .iter()
            .map(|a| a.s_k as f64 - a.space_gap_rhs)
            .fold(f64::INFINITY, f64::min);
        let max_gap = at.iter().map(|a| a.g).max().unwrap_or(0);
        t.row(&[
            label,
            &eps.to_string(),
            &level.to_string(),
            &nodes.to_string(),
            &max_gap.to_string(),
            &f1(min_slack),
            &claim1_viol.to_string(),
            &lemma52_viol.to_string(),
        ]);
    }
}

fn run_and_audit<S, F>(t: &mut Table, label: &str, eps: Eps, k: u32, make: F)
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    let out: AdversaryOutcome<S> = run_adversary(eps, k, make);
    assert!(
        out.equivalence_error.is_none(),
        "{label}: {:?}",
        out.equivalence_error
    );
    audit_rows(t, label, eps, &out.audits);
}

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 8u32;
    let mut t = Table::new(&[
        "target",
        "eps",
        "level",
        "nodes",
        "max-gap",
        "min-slack",
        "claim1-viol",
        "lemma52-viol",
    ]);

    run_and_audit(&mut t, "gk", eps, k, || GkSummary::<Item>::new(eps.value()));
    run_and_audit(&mut t, "gk-greedy", eps, k, || {
        GreedyGk::<Item>::new(eps.value())
    });
    run_and_audit(&mut t, "gk-capped(16)", eps, k, || {
        CappedGk::<Item>::new(eps.value(), 16)
    });
    run_and_audit(&mut t, "kll-fixed", eps, k, || {
        KllSketch::<Item>::with_seed(4 * eps.inverse() as usize, 0xD1CE)
    });
    run_and_audit(&mut t, "decimated(24)", eps, k, || {
        DecimatedSummary::<Item>::new(24)
    });

    emit(
        "Lemma 5.2 + Claim 1 — per-level audit of the recursion tree",
        &t,
        "lemma52_space_gap_audit.csv",
    );
    println!(
        "\n(min-slack is S_k - RHS over all nodes of the level; non-negative => Lemma 5.2 held)"
    );
    cqs_bench::exit_status()
}
