//! Constant-factor estimation: where does reality sit between the
//! theorem's constant and GK's?
//!
//! Theorem 2.2 proves space ≥ c·(k+2)/(4ε) with the (unoptimised)
//! c = 1/8 − 2ε; GK's analysis gives ≤ (11/2ε)·log(2εN). This binary
//! fits measured peak space to the model  space ≈ (a·k + b)·(1/ε)  by
//! least squares over a (k, 1/ε) sweep, yielding the *empirical*
//! per-level constant a — the number the two analyses bracket.
//!
//! Expected: a ≈ 0.5 items per unit (1/ε) per level (i.e. ~1/(2ε) new
//! tuples retained per doubling of N), far above the theorem's
//! c/4 ≈ 0.03 and far below GK's worst-case 5.5.
//!
//! Run: `cargo run -p cqs-bench --release --bin constant_factor_fit`

use cqs_bench::{attack, emit, f3, Target};
use cqs_core::Eps;
use cqs_streams::Table;

/// Least-squares fit of y ≈ a·x + b.
fn fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}

fn main() -> std::process::ExitCode {
    let mut t = Table::new(&[
        "target",
        "eps",
        "slope a (items/(1/eps)/level)",
        "intercept b",
        "r2",
    ]);

    for target in [Target::Gk, Target::GkGreedy] {
        for inv in [32u64, 64, 128] {
            let eps = Eps::from_inverse(inv);
            let points: Vec<(f64, f64)> = (4..=9u32)
                .map(|k| {
                    let rep = attack(eps, k, target);
                    (k as f64, rep.max_stored as f64 / inv as f64)
                })
                .collect();
            let (a, b) = fit(&points);
            // R²
            let mean = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
            let ss_tot: f64 = points.iter().map(|p| (p.1 - mean).powi(2)).sum();
            let ss_res: f64 = points.iter().map(|p| (p.1 - (a * p.0 + b)).powi(2)).sum();
            let r2 = 1.0 - ss_res / ss_tot.max(1e-12);
            t.row(&[&target.name(), &eps.to_string(), &f3(a), &f3(b), &f3(r2)]);
        }
    }

    emit(
        "Empirical per-level space constant (fit: peak|I| = (a*k + b)/eps)",
        &t,
        "constant_factor_fit.csv",
    );
    println!(
        "\ncontext: theorem 2.2 forces a >= c/4 = {:.4} (eps = 1/128);",
        (0.125 - 2.0 / 128.0) / 4.0
    );
    println!("GK's worst-case analysis allows up to ~5.5. The measured a is the");
    println!("constant-factor truth the two proofs bracket.");
    cqs_bench::exit_status()
}
