//! Ablation A2 — gap tie-breaking in the adversarial construction.
//!
//! The paper: "Ties can be broken arbitrarily." This ablation runs the
//! construction against GK with both extreme policies (first vs last
//! maximal gap) and compares forced space and final gap. The theorem is
//! policy-independent, so both runs must satisfy all audited
//! inequalities; the measured space may differ slightly — that
//! difference is the (benign) freedom the proof leaves the adversary.
//!
//! Run: `cargo run -p cqs-bench --release --bin ablation_adversary_ties`

use cqs_bench::{emit, f1};
use cqs_core::adversary::Adversary;
use cqs_core::gap::TieBreak;
use cqs_core::{Eps, Item};
use cqs_gk::GkSummary;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let mut t = Table::new(&[
        "k",
        "tie-break",
        "gap",
        "ceil",
        "peak|I|",
        "thm2.2",
        "claim1-viol",
        "lemma52-viol",
    ]);

    for k in 4..=9u32 {
        for (name, tie) in [
            ("lowest", TieBreak::LowestIndex),
            ("highest", TieBreak::HighestIndex),
        ] {
            let adv = Adversary::new(
                eps,
                GkSummary::<Item>::new(eps.value()),
                GkSummary::<Item>::new(eps.value()),
            )
            .with_tie_break(tie);
            let out = adv.run(k);
            assert!(out.equivalence_error.is_none());
            let rep = out.report();
            t.row(&[
                &k.to_string(),
                name,
                &rep.final_gap.to_string(),
                &rep.gap_ceiling.to_string(),
                &rep.max_stored.to_string(),
                &f1(rep.theorem22_bound),
                &rep.claim1_violations.to_string(),
                &rep.lemma52_violations.to_string(),
            ]);
        }
    }

    emit(
        "Ablation — gap argmax tie-breaking (lowest vs highest index)",
        &t,
        "ablation_adversary_ties.csv",
    );
    cqs_bench::exit_status()
}
