//! T8 — Theorems 6.3/6.4: the randomized lower bound via
//! derandomization.
//!
//! Two parts:
//!
//! 1. The arithmetic of the reduction at δ = 1/N!: log₂(1/δ) = log₂ N!,
//!    whose log is Θ(log N) — so the randomized Ω((1/ε)·log log 1/δ)
//!    and the deterministic Ω((1/ε)·log εN) bounds coincide up to
//!    constants at every stream length (the improvement Theorem 6.4
//!    makes over Theorem 6.3's single length).
//! 2. The executable side: a fixed-seed KLL sketch *is* the
//!    "hard-coded random bits" summary of the union-bound argument; the
//!    adversary applies to it verbatim, and its space obeys the
//!    deterministic bound.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm64_randomized_reduction`

use cqs_bench::{attack, emit, f1, Target};
use cqs_core::randomized::{
    deterministic_bound_shape, ln_factorial, log2_inv_delta, randomized_bound_shape,
    union_bound_applies,
};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);

    let mut t = Table::new(&[
        "N",
        "ln N!",
        "log2(1/delta)",
        "loglog(1/delta)",
        "det-bound",
        "rand-bound",
        "union-bound-ok",
    ]);
    for exp in [10u32, 14, 18, 22, 26] {
        let n = 1u64 << exp;
        let ln_delta = -ln_factorial(n) - 1.0; // δ slightly below 1/N!
        t.row(&[
            &format!("2^{exp}"),
            &f1(ln_factorial(n)),
            &f1(log2_inv_delta(n)),
            &f1(log2_inv_delta(n).log2()),
            &f1(deterministic_bound_shape(eps, n)),
            &f1(randomized_bound_shape(eps, n)),
            &union_bound_applies(ln_delta, n).to_string(),
        ]);
    }
    emit(
        "Theorem 6.4 — derandomization arithmetic at delta = 1/N!",
        &t,
        "thm64_randomized_arithmetic.csv",
    );

    let mut t2 = Table::new(&["k", "N", "gap", "ceil", "peak|I|", "thm2.2-bound", "meets"]);
    for k in 4..=9u32 {
        let rep = attack(eps, k, Target::KllFixed);
        t2.row(&[
            &k.to_string(),
            &rep.n.to_string(),
            &rep.final_gap.to_string(),
            &rep.gap_ceiling.to_string(),
            &rep.max_stored.to_string(),
            &f1(rep.theorem22_bound),
            &(rep.final_gap > rep.gap_ceiling || rep.max_stored as f64 >= rep.theorem22_bound)
                .to_string(),
        ]);
    }
    emit(
        "Theorem 6.4 — fixed-seed KLL under the deterministic adversary",
        &t2,
        "thm64_kll_fixed_adversary.csv",
    );
    println!("\n(a fixed-seed sketch must either blow the gap ceiling — failing as a");
    println!(" deterministic summary — or obey the deterministic space bound)");
    cqs_bench::exit_status()
}
