//! Exports the full recursion-tree audit of one adversary run as CSV —
//! plot-ready data for the space-gap inequality at every node
//! (the raw material behind the Lemma 5.2 audit table).
//!
//! Run: `cargo run -p cqs-bench --release --bin recursion_tree_dump`

use cqs_bench::{attack_gk_outcome, emit, f1};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 7u32;
    let out = attack_gk_outcome(eps, k);
    assert!(out.equivalence_error.is_none());

    let mut t = Table::new(&[
        "node", "level", "N_k", "g", "g'", "g''", "S_k", "rhs", "slack", "claim1", "lemma52",
    ]);
    for (i, a) in out.audits.iter().enumerate() {
        let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
        t.row(&[
            &i.to_string(),
            &a.level.to_string(),
            &a.n_k.to_string(),
            &a.g.to_string(),
            &opt(a.g_prime),
            &opt(a.g_dprime),
            &a.s_k.to_string(),
            &f1(a.space_gap_rhs),
            &f1(a.s_k as f64 - a.space_gap_rhs),
            &a.claim1_ok.to_string(),
            &a.lemma52_ok.to_string(),
        ]);
    }
    emit(
        &format!("Recursion-tree audit (GK, eps = {eps}, k = {k}, post-order)"),
        &t,
        "recursion_tree_dump.csv",
    );
    cqs_bench::exit_status()
}
