//! T4 — the GK upper bound O((1/ε)·log εN), profiled.
//!
//! Measures GK's peak item-array size across stream lengths, ε values
//! and workloads (benign sorted/shuffled streams plus the lower bound's
//! adversarial stream), against the shape (1/ε)·(log₂ εN + 1).
//!
//! Expected: the ratio peak/shape is a modest constant on every
//! workload, grows with neither N (beyond the log) nor 1/ε — i.e. the
//! upper bound's *shape* holds — and the adversarial stream is the most
//! expensive, as the tight lower bound predicts.
//!
//! Run: `cargo run -p cqs-bench --release --bin gk_upper_bound_profile`

use cqs_bench::{attack, drive_u64, emit, f1, Target};
use cqs_core::{ComparisonSummary, Eps};
use cqs_gk::GkSummary;
use cqs_streams::{workload, Table, Workload};

fn shape(eps: f64, n: u64) -> f64 {
    (1.0 / eps) * ((eps * n as f64).max(2.0).log2() + 1.0)
}

fn main() -> std::process::ExitCode {
    let mut t = Table::new(&[
        "eps",
        "N",
        "workload",
        "peak|I|",
        "(1/e)(log2 eN+1)",
        "ratio",
        "max-rank-err",
        "eps*N",
    ]);

    for inv in [32u64, 128] {
        let eps_f = 1.0 / inv as f64;
        for exp in [12u32, 14, 16, 18] {
            let n = 1u64 << exp;
            for w in [Workload::Sorted, Workload::Shuffled, Workload::Sawtooth] {
                let vals = workload(w, n, 7).expect("non-empty");
                let mut gk = GkSummary::new(eps_f);
                let mut peak = 0usize;
                for &v in &vals {
                    gk.insert(v);
                    peak = peak.max(gk.stored_count());
                }
                let stats = drive_u64(&mut GkSummary::new(eps_f), &vals, 128);
                t.row(&[
                    &format!("1/{inv}"),
                    &n.to_string(),
                    w.name(),
                    &peak.to_string(),
                    &f1(shape(eps_f, n)),
                    &f1(peak as f64 / shape(eps_f, n)),
                    &stats.max_rank_error.to_string(),
                    &(n / inv).to_string(),
                ]);
            }
        }
        // Adversarial stream from the lower-bound construction.
        let eps = Eps::from_inverse(inv);
        for k in [6u32, 8] {
            let rep = attack(eps, k, Target::Gk);
            let n = rep.n;
            t.row(&[
                &format!("1/{inv}"),
                &n.to_string(),
                "adversarial",
                &rep.max_stored.to_string(),
                &f1(shape(eps.value(), n)),
                &f1(rep.max_stored as f64 / shape(eps.value(), n)),
                "-",
                &(n / inv).to_string(),
            ]);
        }
    }

    emit(
        "GK upper bound — peak space vs (1/eps)(log2 epsN + 1) across workloads",
        &t,
        "gk_upper_bound_profile.csv",
    );
    cqs_bench::exit_status()
}
