//! T5 — Theorem 6.1: an ε-approximate *median* is as hard as all
//! quantiles.
//!
//! Runs the median reduction (adversarial prefix + below/above-everything
//! padding) against correct GK (space horn) and space-capped GK
//! (failure horn): either the space-gap inequality lower-bounds the
//! space, or the padded stream's median query provably errs.
//!
//! Run: `cargo run -p cqs-bench --release --bin thm61_median_reduction`

use cqs_bench::{attack_capped_outcome, attack_gk_outcome, emit, f1, f3};
use cqs_core::median::{median_reduction, MedianOutcome};
use cqs_core::Eps;
use cqs_streams::Table;

fn main() -> std::process::ExitCode {
    let eps = Eps::from_inverse(32);
    let k = 8u32;
    let mut t = Table::new(&[
        "target",
        "gap",
        "4epsN",
        "horn",
        "phi'",
        "appended",
        "median-rank",
        "err-pi",
        "err-rho",
        "budget",
        "theorem-holds",
    ]);

    // Correct GK: expected to land on the space horn.
    let rep = median_reduction(attack_gk_outcome(eps, k));
    match &rep.outcome {
        MedianOutcome::SpaceBound { stored, rhs } => {
            t.row(&[
                "gk",
                &rep.gap.to_string(),
                &rep.threshold.to_string(),
                "space",
                "-",
                "-",
                "-",
                &format!("stored={stored}"),
                &format!("rhs={}", f1(*rhs)),
                "-",
                &rep.demonstrates_theorem().to_string(),
            ]);
        }
        MedianOutcome::MedianFailure { .. } => {
            t.row(&[
                "gk",
                &rep.gap.to_string(),
                &rep.threshold.to_string(),
                "failure(!)",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                "check",
            ]);
        }
    }

    // Capped GK at several budgets: expected on the failure horn.
    for budget in [8usize, 16, 32] {
        let rep = median_reduction(attack_capped_outcome(eps, k, budget));
        match &rep.outcome {
            MedianOutcome::MedianFailure {
                phi_prime,
                appended,
                total_len,
                median_rank,
                err_pi,
                err_rho,
                budget: b,
            } => {
                let _ = total_len;
                t.row(&[
                    &format!("gk-capped({budget})"),
                    &rep.gap.to_string(),
                    &rep.threshold.to_string(),
                    "median-fails",
                    &f3(*phi_prime),
                    &appended.to_string(),
                    &median_rank.to_string(),
                    &err_pi.to_string(),
                    &err_rho.to_string(),
                    &b.to_string(),
                    &rep.demonstrates_theorem().to_string(),
                ]);
            }
            MedianOutcome::SpaceBound { stored, rhs } => {
                t.row(&[
                    &format!("gk-capped({budget})"),
                    &rep.gap.to_string(),
                    &rep.threshold.to_string(),
                    "space",
                    "-",
                    "-",
                    "-",
                    &format!("stored={stored}"),
                    &format!("rhs={}", f1(*rhs)),
                    "-",
                    &rep.demonstrates_theorem().to_string(),
                ]);
            }
        }
    }

    emit(
        "Theorem 6.1 — approximate-median reduction (two horns of the dilemma)",
        &t,
        "thm61_median_reduction.csv",
    );
    cqs_bench::exit_status()
}
