//! The substrate data structures — order-statistic treap operations and
//! universe label generation — which bound how large the adversarial
//! sweeps can go. Run with `cargo bench -p cqs-bench`.

use std::hint::black_box;

use cqs_bench::micro::{bench, print_header};
use cqs_ostree::OsTree;
use cqs_universe::{generate_increasing, Interval};

fn bench_ostree() {
    const N: u64 = 100_000;
    print_header("ostree");
    bench("ostree/insert_sequential_100k", N, 10, || {
        let mut t = OsTree::with_seed(1);
        for x in 0..N {
            t.insert(x);
        }
        t.len()
    });
    let tree: OsTree<u64> = (0..N).collect();
    const QUERIES: u64 = 10_000;
    bench("ostree/rank (batch of 10k)", QUERIES, 10, || {
        let mut q = 0u64;
        for _ in 0..QUERIES {
            q = (q + 48_271) % N;
            black_box(tree.rank(&q));
        }
    });
    bench("ostree/successor (batch of 10k)", QUERIES, 10, || {
        let mut q = 0u64;
        for _ in 0..QUERIES {
            q = (q + 48_271) % N;
            black_box(tree.successor(&q));
        }
    });
}

fn bench_universe() {
    print_header("universe");
    bench("universe/generate_increasing_4096", 4096, 10, || {
        generate_increasing(&Interval::whole(), 4096).len()
    });
    // Repeatedly nested interval refinement — the worst case for label
    // growth in the recursion tree.
    bench("universe/nested_refinement_64_deep", 64, 10, || {
        let mut iv = Interval::whole();
        for _ in 0..64 {
            let pair = generate_increasing(&iv, 2);
            iv = Interval::open(pair[0].clone(), pair[1].clone());
        }
        iv
    });
}

fn main() {
    bench_ostree();
    bench_universe();
}
