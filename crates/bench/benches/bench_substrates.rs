//! Criterion: the substrate data structures — order-statistic treap
//! operations and universe label generation — which bound how large the
//! adversarial sweeps can go.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cqs_ostree::OsTree;
use cqs_universe::{generate_increasing, Interval};

fn bench_ostree(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostree");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.sample_size(10);
    g.bench_function("insert_sequential_100k", |b| {
        b.iter(|| {
            let mut t = OsTree::with_seed(1);
            for x in 0..N {
                t.insert(x);
            }
            t.len()
        })
    });
    let tree: OsTree<u64> = (0..N).collect();
    g.throughput(Throughput::Elements(1));
    g.bench_function("rank", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 48_271) % N;
            tree.rank(&q)
        })
    });
    g.bench_function("successor", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 48_271) % N;
            tree.successor(&q)
        })
    });
    g.finish();
}

fn bench_universe(c: &mut Criterion) {
    let mut g = c.benchmark_group("universe");
    g.sample_size(10);
    g.throughput(Throughput::Elements(4096));
    g.bench_function("generate_increasing_4096", |b| {
        b.iter(|| generate_increasing(&Interval::whole(), 4096).len())
    });
    // Repeatedly nested interval refinement — the worst case for label
    // growth in the recursion tree.
    g.throughput(Throughput::Elements(64));
    g.bench_function("nested_refinement_64_deep", |b| {
        b.iter(|| {
            let mut iv = Interval::whole();
            for _ in 0..64 {
                let pair = generate_increasing(&iv, 2);
                iv = Interval::open(pair[0].clone(), pair[1].clone());
            }
            iv
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ostree, bench_universe);
criterion_main!(benches);
