//! Insert throughput and query latency of every summary (the
//! microbenchmark counterpart of the T9 comparison table), on the
//! in-tree std-only harness. Run with `cargo bench -p cqs-bench`.

use std::hint::black_box;

use cqs_bench::micro::{bench, print_header};
use cqs_ckms::CkmsSummary;
use cqs_core::ComparisonSummary;
use cqs_gk::{GkSummary, GreedyGk};
use cqs_kll::KllSketch;
use cqs_mrl::MrlSummary;
use cqs_qdigest::QDigest;
use cqs_sampling::ReservoirSummary;
use cqs_streams::{workload, Workload};

const N: u64 = 50_000;
const EPS: f64 = 0.01;
const SAMPLES: usize = 10;

fn bench_inserts() {
    let vals = workload(Workload::Shuffled, N, 3).expect("non-empty");
    print_header("insert_shuffled_50k");

    bench("insert/gk", N, SAMPLES, || {
        let mut s = GkSummary::new(EPS);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/gk-greedy", N, SAMPLES, || {
        let mut s = GreedyGk::new(EPS);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/mrl", N, SAMPLES, || {
        let mut s = MrlSummary::new(EPS, N);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/kll", N, SAMPLES, || {
        let mut s = KllSketch::with_seed(200, 7);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/ckms", N, SAMPLES, || {
        let mut s = CkmsSummary::new(EPS);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/reservoir", N, SAMPLES, || {
        let mut s = ReservoirSummary::with_seed(EPS, 0.01, 9);
        for &v in &vals {
            s.insert(v);
        }
        s.stored_count()
    });
    bench("insert/qdigest", N, SAMPLES, || {
        let mut s = QDigest::new(17, EPS);
        for &v in &vals {
            s.insert(v);
        }
        s.node_count()
    });
}

fn bench_queries() {
    let vals = workload(Workload::Shuffled, N, 5).expect("non-empty");
    let mut gk = GkSummary::new(EPS);
    let mut kll = KllSketch::with_seed(200, 11);
    for &v in &vals {
        gk.insert(v);
        kll.insert(v);
    }
    // Batch 1000 queries per sample so each run is long enough to time.
    const QUERIES: u64 = 1000;
    print_header("query_rank (batch of 1000)");
    bench("query_rank/gk", QUERIES, SAMPLES, || {
        let mut r = 1u64;
        for _ in 0..QUERIES {
            r = r % N + 997;
            black_box(gk.query_rank(r.min(N)));
        }
    });
    bench("query_rank/kll", QUERIES, SAMPLES, || {
        let mut r = 1u64;
        for _ in 0..QUERIES {
            r = r % N + 997;
            black_box(kll.query_rank(r.min(N)));
        }
    });
}

fn main() {
    bench_inserts();
    bench_queries();
}
