//! Criterion: insert throughput and query latency of every summary
//! (the microbenchmark counterpart of the T9 comparison table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cqs_ckms::CkmsSummary;
use cqs_core::ComparisonSummary;
use cqs_gk::{GkSummary, GreedyGk};
use cqs_kll::KllSketch;
use cqs_mrl::MrlSummary;
use cqs_qdigest::QDigest;
use cqs_sampling::ReservoirSummary;
use cqs_streams::{workload, Workload};

const N: u64 = 50_000;
const EPS: f64 = 0.01;

fn bench_inserts(c: &mut Criterion) {
    let vals = workload(Workload::Shuffled, N, 3).expect("non-empty");
    let mut g = c.benchmark_group("insert_shuffled_50k");
    g.throughput(Throughput::Elements(N));
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("gk", EPS), |b| {
        b.iter(|| {
            let mut s = GkSummary::new(EPS);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("gk-greedy", EPS), |b| {
        b.iter(|| {
            let mut s = GreedyGk::new(EPS);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("mrl", EPS), |b| {
        b.iter(|| {
            let mut s = MrlSummary::new(EPS, N);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("kll", EPS), |b| {
        b.iter(|| {
            let mut s = KllSketch::with_seed(200, 7);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("ckms", EPS), |b| {
        b.iter(|| {
            let mut s = CkmsSummary::new(EPS);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("reservoir", EPS), |b| {
        b.iter(|| {
            let mut s = ReservoirSummary::with_seed(EPS, 0.01, 9);
            for &v in &vals {
                s.insert(v);
            }
            s.stored_count()
        })
    });
    g.bench_function(BenchmarkId::new("qdigest", EPS), |b| {
        b.iter(|| {
            let mut s = QDigest::new(17, EPS);
            for &v in &vals {
                s.insert(v);
            }
            s.node_count()
        })
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let vals = workload(Workload::Shuffled, N, 5).expect("non-empty");
    let mut gk = GkSummary::new(EPS);
    let mut kll = KllSketch::with_seed(200, 11);
    for &v in &vals {
        gk.insert(v);
        kll.insert(v);
    }
    let mut g = c.benchmark_group("query_rank");
    g.bench_function("gk", |b| {
        let mut r = 1u64;
        b.iter(|| {
            r = r % N + 997;
            gk.query_rank(r.min(N))
        })
    });
    g.bench_function("kll", |b| {
        let mut r = 1u64;
        b.iter(|| {
            r = r % N + 997;
            kll.query_rank(r.min(N))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inserts, bench_queries);
criterion_main!(benches);
