//! Criterion: cost of the adversarial construction itself (per item),
//! for the three standing targets — the harness must scale to the T1
//! sweep sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cqs_bench::{attack, Target};
use cqs_core::Eps;

fn bench_adversary(c: &mut Criterion) {
    let eps = Eps::from_inverse(32);
    let mut g = c.benchmark_group("adversary_run");
    g.sample_size(10);
    for k in [4u32, 6] {
        g.throughput(Throughput::Elements(eps.stream_len(k)));
        for target in [Target::Gk, Target::GkGreedy] {
            g.bench_with_input(
                BenchmarkId::new(target.name(), format!("k{k}")),
                &k,
                |b, &k| b.iter(|| attack(eps, k, target).max_stored),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
