//! Cost of the adversarial construction itself (per item), for the
//! standing targets — the harness must scale to the T1 sweep sizes. Run
//! with `cargo bench -p cqs-bench`.

use cqs_bench::micro::{bench, print_header};
use cqs_bench::{attack, Target};
use cqs_core::Eps;

fn main() {
    let eps = Eps::from_inverse(32);
    print_header("adversary_run");
    for k in [4u32, 6] {
        let n = eps.stream_len(k);
        for target in [Target::Gk, Target::GkGreedy] {
            let label = format!("adversary/{}/k{k}", target.name());
            bench(&label, n, 10, || attack(eps, k, target).max_stored);
        }
    }
}
