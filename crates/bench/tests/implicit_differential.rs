//! Materialized-vs-implicit differential suite.
//!
//! The interval-compressed stream representation is only admissible if
//! it is *observationally identical* to the materialized treap: the
//! summary under attack sees the same items in the same order, every
//! rank/successor/predecessor query resolves to the same answer, and so
//! the whole adversary run — final gap, per-node audits, verdict —
//! must come out byte-for-byte the same. These tests pin that at
//! moderate N for every sweep target; the `#[ignore]`d members push the
//! grid to N = 10⁶ and the single N ≈ 1.34×10⁸ smoke cell (minutes of
//! wall-clock — run explicitly with `cargo test -- --ignored`).

use cqs_bench::sweeps::{thm22_grid, thm22_large_n_smoke_grid, thm22_sweep};
use cqs_bench::{try_attack_repr, Target};
use cqs_core::StreamRepr;

/// Runs one (ε, k, target) cell under both representations and asserts
/// the reports match exactly.
fn assert_cell_identical(inv: u64, k: u32, target: Target) {
    let eps = cqs_core::Eps::from_inverse(inv);
    let classic = try_attack_repr(eps, k, target, StreamRepr::Materialized);
    let implicit = try_attack_repr(eps, k, target, StreamRepr::Implicit);
    match (classic, implicit) {
        (Ok(a), Ok(b)) => assert_eq!(
            a,
            b,
            "reports diverged at 1/eps={inv} k={k} {}",
            target.name()
        ),
        (Err(a), Err(b)) => assert_eq!(
            a,
            b,
            "errors diverged at 1/eps={inv} k={k} {}",
            target.name()
        ),
        (a, b) => panic!(
            "outcome shape diverged at 1/eps={inv} k={k} {}: {a:?} vs {b:?}",
            target.name()
        ),
    }
}

#[test]
fn implicit_matches_materialized_on_the_moderate_grid() {
    for &inv in &[16u64, 32] {
        for k in 4..=7 {
            for target in [Target::Gk, Target::GkGreedy, Target::KllFixed] {
                assert_cell_identical(inv, k, target);
            }
        }
    }
}

#[test]
fn implicit_matches_materialized_on_a_capped_summary() {
    // Capped GK goes incorrect mid-run (the failure-witness target);
    // the representations must agree on *that* trajectory too.
    assert_cell_identical(16, 6, Target::Capped(12));
}

/// The full differential grid, up to N = 1024·2¹⁰ ≈ 10⁶. Minutes of
/// wall-clock: `cargo test -p cqs-bench --release -- --ignored`.
#[test]
#[ignore = "minutes-long full grid; run explicitly with --ignored"]
fn implicit_matches_materialized_up_to_a_million_items() {
    for (inv, ks) in [(32u64, 4..=12u32), (128, 4..=12), (1024, 4..=10)] {
        for k in ks {
            for target in [Target::Gk, Target::GkGreedy] {
                assert_cell_identical(inv, k, target);
            }
        }
    }
}

/// Jobs-1-vs-4 determinism at the N ≈ 1.34×10⁸ smoke cell: the sweep
/// table (and hence the CSV the CI leg byte-diffs) must not depend on
/// worker-pool scheduling even at large-N scale.
#[test]
#[ignore = "~10⁸ items twice; run explicitly with --ignored"]
fn large_n_smoke_cell_is_jobs_deterministic() {
    let cells = thm22_large_n_smoke_grid();
    let serial = thm22_sweep(&cells, 1, false);
    assert!(serial.skipped.is_empty(), "{:?}", serial.skipped);
    let pooled = thm22_sweep(&cells, 4, false);
    assert_eq!(serial.table.to_csv(), pooled.table.to_csv());
}

#[test]
fn moderate_sweep_is_jobs_deterministic_for_implicit_cells() {
    // The cheap analogue of the ignored large-N check, so CI always
    // exercises implicit cells through the worker pool.
    let cells = cqs_bench::sweeps::thm22_grid_repr(
        &[16],
        4..=6,
        &[Target::Gk, Target::GkGreedy],
        StreamRepr::Implicit,
    );
    let serial = thm22_sweep(&cells, 1, false);
    assert!(serial.skipped.is_empty(), "{:?}", serial.skipped);
    let pooled = thm22_sweep(&cells, 4, false);
    assert_eq!(serial.table.to_csv(), pooled.table.to_csv());
    // And the implicit table matches the materialized table outright:
    // the representation must be invisible in every reported column.
    let classic = thm22_sweep(
        &thm22_grid(&[16], 4..=6, &[Target::Gk, Target::GkGreedy]),
        1,
        false,
    );
    assert_eq!(serial.table.to_csv(), classic.table.to_csv());
}
