#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-qdigest — the q-digest summary over a bounded integer universe
//!
//! The q-digest of Shrivastava, Buragohain, Agrawal & Suri (SenSys 2004)
//! summarises a stream from a *known, bounded* universe [0, 2^L) by
//! maintaining counts on a pruned dyadic tree, in O((1/ε)·log |U|)
//! space.
//!
//! Role in the reproduction: the lower-bound paper explicitly exempts
//! q-digest from its Ω((1/ε)·log εN) bound — it is **not**
//! comparison-based (Definition 2.1 fails twice: it inspects item values
//! to build the dyadic tree, and it can answer queries with items that
//! never occurred in the stream). This crate exists as that contrast:
//! the T9 comparison experiment shows its space is flat in N where all
//! comparison-based summaries grow, and the type system shows the
//! adversary cannot even be mounted on it (it consumes `u64`, not the
//! opaque `Item`).
//!
//! # Example
//!
//! ```
//! use cqs_qdigest::QDigest;
//!
//! let mut qd = QDigest::new(16, 0.01); // universe [0, 2^16)
//! for x in 0..50_000u64 {
//!     qd.insert(x % 65_536);
//! }
//! let med = qd.quantile(0.5);
//! assert!((24_000..=26_500).contains(&med));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Typed refusal of a q-digest merge: the two digests were built over
/// different parameter spaces, so their dyadic trees are not
/// comparable and adding node counts would silently corrupt both the
/// ranges and the error guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeMismatch {
    /// The universes differ: node ids index different dyadic trees.
    Universe {
        /// Receiver's log₂ universe size.
        left: u32,
        /// Argument's log₂ universe size.
        right: u32,
    },
    /// The compression factors differ: the merged digest's ⌊n/k⌋
    /// pruning threshold — and with it the ε·n error bound — would be
    /// silently governed by whichever k the receiver happened to have.
    Compression {
        /// Receiver's compression factor.
        left: u64,
        /// Argument's compression factor.
        right: u64,
    },
}

impl fmt::Display for MergeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeMismatch::Universe { left, right } => write!(
                f,
                "q-digest merge requires identical universes (2^{left} vs 2^{right})"
            ),
            MergeMismatch::Compression { left, right } => write!(
                f,
                "q-digest merge requires identical compression factors ({left} vs {right})"
            ),
        }
    }
}

impl std::error::Error for MergeMismatch {}

/// A q-digest over the universe [0, 2^log_universe).
#[derive(Clone, Debug)]
pub struct QDigest {
    /// Dyadic-node counts; node ids follow the heap convention
    /// (root = 1, children 2v and 2v+1, leaves at depth L).
    counts: BTreeMap<u64, u64>,
    log_universe: u32,
    /// Compression factor k: nodes are merged while
    /// `count(v) + count(sibling) + count(parent) < ⌊n/k⌋`.
    k: u64,
    n: u64,
}

impl QDigest {
    /// Creates a digest for universe [0, 2^log_universe) with rank error
    /// at most ε·n (k is set to ⌈log₂|U|/ε⌉ per the q-digest analysis).
    ///
    /// # Panics
    ///
    /// Panics if `log_universe` is outside [1, 40] or ε out of (0, 0.5).
    pub fn new(log_universe: u32, eps: f64) -> Self {
        assert!(
            (1..=40).contains(&log_universe),
            "log_universe out of range"
        );
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        let k = ((log_universe as f64) / eps).ceil() as u64;
        QDigest {
            counts: BTreeMap::new(),
            log_universe,
            k: k.max(1),
            n: 0,
        }
    }

    /// The universe size 2^L.
    pub fn universe(&self) -> u64 {
        1u64 << self.log_universe
    }

    /// Number of tree nodes currently stored — the digest's space.
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// Items processed.
    pub fn items_processed(&self) -> u64 {
        self.n
    }

    /// The compression factor k.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Inserts a value.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the universe.
    pub fn insert(&mut self, x: u64) {
        assert!(x < self.universe(), "value outside universe");
        let leaf = (1u64 << self.log_universe) | x;
        *self.counts.entry(leaf).or_insert(0) += 1;
        self.n += 1;
        // Compress when the tree outgrows its target size of ~3k nodes.
        if self.counts.len() as u64 > 3 * self.k {
            self.compress();
        }
    }

    /// Merges another digest into this one (distributed aggregation over
    /// the same universe): node counts add, then a compress restores the
    /// size bound. Error bounds add in the worst case.
    ///
    /// Mismatched universes or compression factors come back as a typed
    /// [`MergeMismatch`] with `self` unchanged — a digest over a
    /// different dyadic tree, or pruned against a different ⌊n/k⌋
    /// threshold, must never be silently absorbed.
    pub fn merge(&mut self, other: &QDigest) -> Result<(), MergeMismatch> {
        if self.log_universe != other.log_universe {
            return Err(MergeMismatch::Universe {
                left: self.log_universe,
                right: other.log_universe,
            });
        }
        if self.k != other.k {
            return Err(MergeMismatch::Compression {
                left: self.k,
                right: other.k,
            });
        }
        for (&id, &c) in &other.counts {
            *self.counts.entry(id).or_insert(0) += c;
        }
        self.n += other.n;
        self.compress();
        Ok(())
    }

    /// The q-digest COMPRESS: bottom-up, merge under-full sibling pairs
    /// into their parent while the triple stays below ⌊n/k⌋.
    pub fn compress(&mut self) {
        let thr = (self.n / self.k).max(1);
        // Process nodes deepest-first so freed counts can cascade up.
        let mut ids: Vec<u64> = self.counts.keys().copied().filter(|&v| v > 1).collect();
        ids.sort_unstable_by_key(|&v| std::cmp::Reverse(v.ilog2()));
        for id in ids {
            let Some(&c) = self.counts.get(&id) else {
                continue;
            };
            let sibling = id ^ 1;
            let parent = id >> 1;
            let cs = self.counts.get(&sibling).copied().unwrap_or(0);
            let cp = self.counts.get(&parent).copied().unwrap_or(0);
            if c + cs + cp < thr {
                self.counts.remove(&id);
                self.counts.remove(&sibling);
                *self.counts.entry(parent).or_insert(0) += c + cs;
            }
        }
    }

    /// Depth of a node (root = 0, leaves = L).
    fn depth(&self, id: u64) -> u32 {
        id.ilog2()
    }

    /// Inclusive value range [lo, hi] covered by a node.
    fn range(&self, id: u64) -> (u64, u64) {
        let d = self.depth(id);
        let width = 1u64 << (self.log_universe - d);
        let index = id - (1u64 << d);
        let lo = index * width;
        (lo, lo + width - 1)
    }

    /// Nodes sorted q-digest-style: by range upper bound, ties by
    /// smaller range first.
    fn sorted_nodes(&self) -> Vec<(u64, u64, u64)> {
        // (hi, width, count)
        let mut v: Vec<(u64, u64, u64)> = self
            .counts
            .iter()
            .map(|(&id, &c)| {
                let (lo, hi) = self.range(id);
                (hi, hi - lo + 1, c)
            })
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        v
    }

    /// Answers a quantile query: the smallest value `y` such that the
    /// accumulated count of nodes with upper bound ≤ y reaches ⌊ϕn⌋.
    /// Note the answer is a universe value that need not have occurred
    /// in the stream — one of the two reasons q-digest is not
    /// comparison-based.
    pub fn quantile(&self, phi: f64) -> u64 {
        let target = ((phi * self.n as f64).floor() as u64).clamp(1, self.n.max(1));
        let mut cum = 0u64;
        for (hi, _, c) in self.sorted_nodes() {
            cum += c;
            if cum >= target {
                return hi;
            }
        }
        self.universe() - 1
    }

    /// Estimated number of stream items ≤ q (counts every node whose
    /// range lies entirely at or below q).
    pub fn estimate_rank(&self, q: u64) -> u64 {
        self.counts
            .iter()
            .map(|(&id, &c)| {
                let (_, hi) = self.range(id);
                if hi <= q {
                    c
                } else {
                    0
                }
            })
            .sum()
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn mass_conserved_and_space_bounded(xs in proptest::collection::vec(0u64..4096, 1..3000)) {
            let mut qd = QDigest::new(12, 0.05);
            for &x in &xs {
                qd.insert(x);
            }
            qd.compress();
            let total: u64 = (0..4096).map(|q| {
                // estimate_rank of universe max counts everything.
                if q == 4095 { qd.estimate_rank(4095) } else { 0 }
            }).sum();
            prop_assert_eq!(total, xs.len() as u64);
            prop_assert!(qd.node_count() as u64 <= 3 * qd.k() + 2);
        }

        #[test]
        fn rank_estimates_never_overcount(xs in proptest::collection::vec(0u64..1024, 1..1000)) {
            let mut qd = QDigest::new(10, 0.05);
            let mut sorted = xs.clone();
            for &x in &xs {
                qd.insert(x);
            }
            sorted.sort_unstable();
            for q in [0u64, 100, 500, 1023] {
                let est = qd.estimate_rank(q);
                let truth = sorted.partition_point(|&x| x <= q) as u64;
                prop_assert!(est <= truth, "rank({q}): est {est} > true {truth}");
            }
        }

        #[test]
        fn quantile_monotone_in_phi(xs in proptest::collection::vec(0u64..4096, 50..2000)) {
            let mut qd = QDigest::new(12, 0.05);
            for &x in &xs {
                qd.insert(x);
            }
            let mut prev = 0u64;
            for i in 1..=10 {
                let q = qd.quantile(i as f64 / 10.0);
                prop_assert!(q >= prev, "quantile not monotone at phi={}", i as f64 / 10.0);
                prev = q;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, modulo: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| (i * 48271 + seed) % modulo).collect();
        let mut s = seed | 1;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn count_mass_is_conserved() {
        let mut qd = QDigest::new(16, 0.02);
        for x in shuffled(20_000, 65_536, 1) {
            qd.insert(x);
        }
        let total: u64 = qd.counts.values().sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn space_is_bounded_by_o_k() {
        let mut qd = QDigest::new(16, 0.02);
        let mut peak = 0usize;
        for x in shuffled(200_000, 65_536, 2) {
            qd.insert(x);
            peak = peak.max(qd.node_count());
        }
        assert!(
            (peak as u64) <= 3 * qd.k() + 2,
            "peak {peak} exceeds 3k = {}",
            3 * qd.k()
        );
    }

    #[test]
    fn space_is_flat_in_stream_length() {
        // The non-comparison-based escape hatch: space depends on |U|
        // and ε only.
        let measure = |n: u64| {
            let mut qd = QDigest::new(12, 0.05);
            for x in shuffled(n, 4096, 3) {
                qd.insert(x);
            }
            qd.compress();
            qd.node_count()
        };
        let s_small = measure(10_000);
        let s_big = measure(320_000);
        assert!(
            s_big <= s_small * 2 + 16,
            "space grew with N: {s_small} -> {s_big}"
        );
    }

    #[test]
    fn quantiles_within_eps_on_uniform_values() {
        let n = 65_536u64;
        let eps = 0.02;
        let mut qd = QDigest::new(16, eps);
        // Values 0..65536 once each: value ≈ rank − 1.
        for x in shuffled(n, 65_536, 4) {
            qd.insert(x);
        }
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let ans = qd.quantile(phi);
            let target = (phi * n as f64) as u64;
            let err = ans.abs_diff(target);
            assert!(
                err <= (2.0 * eps * n as f64) as u64,
                "phi={phi}: ans {ans}, target {target}, err {err}"
            );
        }
    }

    #[test]
    fn rank_estimates_are_underestimates_within_budget() {
        let n = 65_536u64;
        let eps = 0.02;
        let mut qd = QDigest::new(16, eps);
        for x in shuffled(n, 65_536, 5) {
            qd.insert(x);
        }
        for q in (0..65_536u64).step_by(8_192) {
            let est = qd.estimate_rank(q);
            let truth = q + 1;
            assert!(est <= truth, "rank({q}) overestimated: {est} > {truth}");
            assert!(
                truth - est <= (2.0 * eps * n as f64) as u64,
                "rank({q}) underestimated too much: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn duplicates_concentrate_mass() {
        let mut qd = QDigest::new(10, 0.05);
        for _ in 0..10_000 {
            qd.insert(512);
        }
        assert!(qd.node_count() <= 12);
        let med = qd.quantile(0.5);
        // All mass near 512; the answer's node range must cover it.
        assert!((512..1024).contains(&med));
    }

    #[test]
    #[should_panic(expected = "value outside universe")]
    fn out_of_universe_rejected() {
        let mut qd = QDigest::new(8, 0.1);
        qd.insert(256);
    }
}
