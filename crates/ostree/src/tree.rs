//! Treap internals: split/merge with subtree-size augmentation.
//!
//! Nodes live in one contiguous `Vec` arena and link to each other by
//! `u32` index (`NIL` = absent), not by `Box` pointer. The adversary
//! inserts items in sorted leaf runs, so arena order correlates with
//! key order and a descent touches a handful of cache lines where the
//! boxed layout chased pointers across the heap; it also makes a node
//! allocation a bump of the `Vec` instead of a `malloc`.

use crate::iter::Iter;

/// Absent-link sentinel. `nodes.get(NIL as usize)` is `None` because
/// the arena never grows to `u32::MAX` entries (checked on alloc), so
/// every walk treats `NIL` uniformly as an empty subtree.
pub(crate) const NIL: u32 = u32::MAX;

pub(crate) struct Node<T> {
    pub(crate) item: T,
    pri: u64,
    tag: u64,
    size: u32,
    /// Cached size of the left subtree. Redundant with
    /// `size(nodes, left)`, but keeping it in the node means every
    /// rank/select descent reads ONE arena slot per level instead of
    /// also touching the left child just for its size.
    left_size: u32,
    pub(crate) left: u32,
    pub(crate) right: u32,
}

/// A multiset ordered by `T: Ord`, supporting order statistics.
///
/// See the crate docs for the operation set. All operations are
/// O(log n) expected; shape is deterministic given the seed and the
/// insert sequence.
pub struct OsTree<T> {
    nodes: Vec<Node<T>>,
    /// Slots of removed nodes, reused before the arena grows. A freed
    /// slot keeps its (unreachable) item until reuse; removal is off
    /// the adversary's hot path, so the transient retention is cheaper
    /// than compacting the arena.
    free: Vec<u32>,
    root: u32,
    rng: u64,
    /// Right-spine scratch for the bulk sorted build, kept across
    /// [`extend_sorted`](Self::extend_sorted) calls.
    spine: Vec<u32>,
}

impl<T: Ord> Default for OsTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> OsTree<T> {
    /// An empty tree with the default priority seed.
    pub fn new() -> Self {
        Self::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// An empty tree whose priority sequence starts from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        OsTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: seed | 1,
            spine: Vec::new(),
        }
    }

    fn next_pri(&mut self) -> u64 {
        // SplitMix64: deterministic, well-distributed priorities.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Claims an arena slot for a fresh leaf node, writing its index to
    /// `out`. Out-parameter (not return value) so the model-purity
    /// analysis sees the caller's link variable as what it is — an
    /// arena index, not an item derivative — and certifies the index
    /// arithmetic downstream of it.
    fn alloc(&mut self, item: T, pri: u64, tag: u64, out: &mut u32) {
        let node = Node {
            item,
            pri,
            tag,
            size: 1,
            left_size: 0,
            left: NIL,
            right: NIL,
        };
        if let Some(i) = self.free.pop() {
            if let Some(slot) = self.nodes.get_mut(i as usize) {
                *slot = node;
                *out = i;
                return;
            }
        }
        assert!(
            self.nodes.len() < NIL as usize,
            "OsTree arena exhausted the u32 index space"
        );
        let i = self.nodes.len() as u32;
        self.nodes.push(node);
        *out = i;
    }

    #[inline]
    fn node(&self, i: u32) -> Option<&Node<T>> {
        self.nodes.get(i as usize)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        size(&self.nodes, self.root)
    }

    /// Pre-allocates arena capacity for `additional` more items. A
    /// caller that knows its final size up front (the adversary knows
    /// N = (1/ε)·2^k before the first insert) spares the arena its
    /// doubling re-allocations, each of which copies every node.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.node(self.root).is_none()
    }

    /// Inserts `item`; duplicates are kept (multiset semantics).
    pub fn insert(&mut self, item: T) {
        self.insert_tagged(item, 0);
    }

    /// Inserts `item` carrying a 64-bit tag — an augmentation slot each
    /// node stores alongside the item (the adversary keeps the arrival
    /// position there, fusing what used to be a parallel
    /// `BTreeMap<Item, u64>` walk into this one). Duplicates are kept.
    pub fn insert_tagged(&mut self, item: T, tag: u64) {
        let pri = self.next_pri();
        let mut halves = (NIL, NIL);
        split(&mut self.nodes, self.root, &item, &mut halves);
        let mut idx = NIL;
        self.alloc(item, pri, tag, &mut idx);
        let lo = merge(&mut self.nodes, halves.0, idx);
        self.root = merge(&mut self.nodes, lo, halves.1);
    }

    /// Inserts `item` with `tag` only if no equal item is stored;
    /// returns whether the insert happened. Costs a single descent, so
    /// callers needing set (not multiset) semantics get the duplicate
    /// check for free instead of paying a separate `contains` walk.
    pub fn insert_unique_tagged(&mut self, item: T, tag: u64) -> bool {
        let pri = self.next_pri();
        let mut halves = (NIL, NIL);
        split(&mut self.nodes, self.root, &item, &mut halves);
        // `halves.1` holds everything ≥ item, so an equal occurrence,
        // if any, is exactly its minimum.
        if leftmost(&self.nodes, halves.1).is_some_and(|m| *m == item) {
            self.root = merge(&mut self.nodes, halves.0, halves.1);
            return false;
        }
        let mut idx = NIL;
        self.alloc(item, pri, tag, &mut idx);
        let lo = merge(&mut self.nodes, halves.0, idx);
        self.root = merge(&mut self.nodes, lo, halves.1);
        true
    }

    /// The tag of a stored occurrence of `q` (the one nearest the root
    /// if duplicates exist), or `None` if `q` is not stored.
    pub fn tag_of(&self, q: &T) -> Option<u64> {
        let mut n = self.node(self.root);
        while let Some(node) = n {
            match q.cmp(&node.item) {
                std::cmp::Ordering::Equal => return Some(node.tag),
                std::cmp::Ordering::Less => n = self.node(node.left),
                std::cmp::Ordering::Greater => n = self.node(node.right),
            }
        }
        None
    }

    /// Bulk insert of a non-decreasing run: builds a treap from the run
    /// in O(m) (stack-based Cartesian construction over the drawn
    /// priorities) and joins it with the existing tree in
    /// O(m + log n) expected when the run occupies a key range free of
    /// existing items (the adversary's leaf case), degrading gracefully
    /// to a treap union — O(m·log(n/m)) expected — under arbitrary
    /// interleaving. Equivalent to calling [`insert`](Self::insert) per
    /// item: same multiset, same order-statistic answers.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `items` is sorted non-decreasingly.
    pub fn extend_sorted<I: IntoIterator<Item = T>>(&mut self, items: I) {
        self.extend_sorted_tagged(items.into_iter().map(|it| (it, 0)));
    }

    /// [`extend_sorted`](Self::extend_sorted) with a tag per item (see
    /// [`insert_tagged`](Self::insert_tagged)).
    pub fn extend_sorted_tagged<I: IntoIterator<Item = (T, u64)>>(&mut self, pairs: I) {
        let mut run = NIL;
        self.build_sorted(pairs, &mut run);
        self.root = union(&mut self.nodes, self.root, run);
    }

    /// Builds a heap-ordered treap from non-decreasing `pairs` in one
    /// pass: the stack holds the right spine; each new (rightmost) node
    /// absorbs the popped lower-priority suffix as its left subtree.
    fn build_sorted<I: IntoIterator<Item = (T, u64)>>(&mut self, pairs: I, out: &mut u32) {
        let mut spine = std::mem::take(&mut self.spine);
        spine.clear();
        for (item, tag) in pairs {
            debug_assert!(
                spine
                    .last()
                    .is_none_or(|&top| self.node(top).is_none_or(|n| n.item <= item)),
                "extend_sorted run is not sorted"
            );
            let pri = self.next_pri();
            let mut idx = NIL;
            self.alloc(item, pri, tag, &mut idx);
            let mut carry = NIL;
            while spine
                .last()
                .is_some_and(|&top| self.node(top).is_some_and(|n| n.pri < pri))
            {
                let top = spine.pop().expect("checked non-empty");
                set_right(&mut self.nodes, top, carry);
                carry = top;
            }
            set_left(&mut self.nodes, idx, carry);
            spine.push(idx);
        }
        // Re-attach the remaining spine bottom-up.
        let mut right = NIL;
        while let Some(top) = spine.pop() {
            set_right(&mut self.nodes, top, right);
            right = top;
        }
        self.spine = spine;
        *out = right;
    }

    /// Removes one occurrence of `item`; returns whether anything was
    /// removed. O(log n) expected.
    pub fn remove(&mut self, item: &T) -> bool {
        let mut lo_ge = (NIL, NIL);
        split(&mut self.nodes, self.root, item, &mut lo_ge);
        // Split off the run of items equal to `item`, drop one.
        let mut eq_gt = (NIL, NIL);
        split_gt(&mut self.nodes, lo_ge.1, item, &mut eq_gt);
        let (removed, eq) = match self.node(eq_gt.0) {
            None => (false, eq_gt.0),
            Some(n) => {
                let (l, r) = (n.left, n.right);
                self.free.push(eq_gt.0);
                (true, merge(&mut self.nodes, l, r))
            }
        };
        let lo = merge(&mut self.nodes, lo_ge.0, eq);
        self.root = merge(&mut self.nodes, lo, eq_gt.1);
        removed
    }

    /// Number of stored items strictly inside the open range `(lo, hi)`.
    pub fn count_between(&self, lo: &T, hi: &T) -> usize {
        if lo >= hi {
            return 0;
        }
        self.count_less(hi) - self.count_le(lo)
    }

    /// Visits, in order, the stored items within the closed range
    /// `[lo, hi]` — the allocation-free replacement for the old
    /// `range_items` (which collected a `Vec<&T>` on the gap-scan hot
    /// path and failed the `hot-path-alloc` lint).
    pub fn for_each_in_range(&self, lo: &T, hi: &T, f: &mut dyn FnMut(&T)) {
        fn walk<'a, T: Ord>(
            nodes: &'a [Node<T>],
            link: u32,
            lo: &T,
            hi: &T,
            f: &mut dyn FnMut(&'a T),
        ) {
            let Some(node) = nodes.get(link as usize) else {
                return;
            };
            if node.item >= *lo {
                walk(nodes, node.left, lo, hi, f);
            }
            if node.item >= *lo && node.item <= *hi {
                f(&node.item);
            }
            if node.item <= *hi {
                walk(nodes, node.right, lo, hi, f);
            }
        }
        walk(&self.nodes, self.root, lo, hi, f);
    }

    /// Number of stored items strictly smaller than `q`.
    pub fn count_less(&self, q: &T) -> usize {
        let mut n = self.node(self.root);
        let mut acc = 0;
        while let Some(node) = n {
            if node.item < *q {
                acc += node.left_size as usize + 1;
                n = self.node(node.right);
            } else {
                n = self.node(node.left);
            }
        }
        acc
    }

    /// Number of stored items `<= q`.
    pub fn count_le(&self, q: &T) -> usize {
        let mut n = self.node(self.root);
        let mut acc = 0;
        while let Some(node) = n {
            if node.item <= *q {
                acc += node.left_size as usize + 1;
                n = self.node(node.right);
            } else {
                n = self.node(node.left);
            }
        }
        acc
    }

    /// The 1-based rank of `q`: one more than the number of items
    /// strictly smaller (the paper's `rank_σ`, well-defined because the
    /// adversarial streams contain distinct items).
    pub fn rank(&self, q: &T) -> usize {
        self.count_less(q) + 1
    }

    /// Batched [`count_le`](Self::count_le): answers for every query of
    /// the sorted slice `qs` in **one** tree walk, written into `out`
    /// (cleared first; `out[i]` answers `qs[i]`).
    ///
    /// The query set partitions recursively at each node — queries
    /// below the node descend left, the rest descend right with the
    /// accumulator advanced — so queries sharing a descent path share
    /// its comparisons: O(m·log n) worst case like m single walks, but
    /// collapsing toward O(m + log n) when the queries are clustered
    /// (the adversary's interval scans always are).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `qs` is sorted non-decreasingly.
    pub fn multi_count_le(&self, qs: &[T], out: &mut Vec<usize>) {
        debug_assert!(
            qs.iter().zip(qs.iter().skip(1)).all(|(a, b)| a <= b),
            "multi_count_le queries must be sorted"
        );
        out.clear();
        out.resize(qs.len(), 0);
        // A query q goes right (answer includes left subtree + node)
        // exactly when node.item <= q, mirroring `count_le`'s descent.
        multi_count(&self.nodes, self.root, qs, 0, out, &|q, item| *q < *item);
    }

    /// Batched [`count_less`](Self::count_less) over the sorted `qs`;
    /// one walk, same output convention as
    /// [`multi_count_le`](Self::multi_count_le).
    pub fn multi_count_less(&self, qs: &[T], out: &mut Vec<usize>) {
        debug_assert!(
            qs.iter().zip(qs.iter().skip(1)).all(|(a, b)| a <= b),
            "multi_count_less queries must be sorted"
        );
        out.clear();
        out.resize(qs.len(), 0);
        multi_count(&self.nodes, self.root, qs, 0, out, &|q, item| *q <= *item);
    }

    /// Batched [`rank`](Self::rank) over the sorted `qs`: one walk,
    /// `out[i]` is the 1-based rank of `qs[i]`.
    pub fn multi_rank(&self, qs: &[T], out: &mut Vec<usize>) {
        self.multi_count_less(qs, out);
        for r in out.iter_mut() {
            *r += 1;
        }
    }

    /// Batched [`select`](Self::select) over the sorted rank slice:
    /// one walk, `out[i]` is the item of rank `ranks[i]` (or `None`
    /// when the rank is out of range).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `ranks` is sorted non-decreasingly.
    pub fn multi_select<'a>(&'a self, ranks: &[usize], out: &mut Vec<Option<&'a T>>) {
        debug_assert!(
            ranks.iter().zip(ranks.iter().skip(1)).all(|(a, b)| a <= b),
            "multi_select ranks must be sorted"
        );
        out.clear();
        out.resize(ranks.len(), None);
        multi_select_walk(&self.nodes, self.root, 0, ranks, out);
    }

    /// Batched [`tag_of`](Self::tag_of) over the sorted `qs`: one walk,
    /// `out[i]` is the tag of a stored occurrence of `qs[i]` (`None`
    /// when absent). Resolves the same occurrence `tag_of` would (the
    /// one nearest the root).
    pub fn multi_tag_of(&self, qs: &[T], out: &mut Vec<Option<u64>>) {
        debug_assert!(
            qs.iter().zip(qs.iter().skip(1)).all(|(a, b)| a <= b),
            "multi_tag_of queries must be sorted"
        );
        out.clear();
        out.resize(qs.len(), None);
        multi_tag_walk(&self.nodes, self.root, qs, out);
    }

    /// The item of 1-based rank `r` (i.e. the r-th smallest), if any.
    pub fn select(&self, r: usize) -> Option<&T> {
        if r == 0 || r > self.len() {
            return None;
        }
        let mut n = self.node(self.root);
        let mut r = r;
        while let Some(node) = n {
            let ls = node.left_size as usize;
            if r == ls + 1 {
                return Some(&node.item);
            } else if r <= ls {
                n = self.node(node.left);
            } else {
                r -= ls + 1;
                n = self.node(node.right);
            }
        }
        None
    }

    /// Smallest stored item strictly greater than `q` — the paper's
    /// `next(σ, q)`.
    pub fn successor(&self, q: &T) -> Option<&T> {
        let mut n = self.node(self.root);
        let mut best = None;
        while let Some(node) = n {
            if node.item > *q {
                best = Some(&node.item);
                n = self.node(node.left);
            } else {
                n = self.node(node.right);
            }
        }
        best
    }

    /// Largest stored item strictly smaller than `q` — the paper's
    /// `prev(σ, q)`.
    pub fn predecessor(&self, q: &T) -> Option<&T> {
        let mut n = self.node(self.root);
        let mut best = None;
        while let Some(node) = n {
            if node.item < *q {
                best = Some(&node.item);
                n = self.node(node.right);
            } else {
                n = self.node(node.left);
            }
        }
        best
    }

    /// Whether `q` is stored.
    pub fn contains(&self, q: &T) -> bool {
        let mut n = self.node(self.root);
        while let Some(node) = n {
            match q.cmp(&node.item) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => n = self.node(node.left),
                std::cmp::Ordering::Greater => n = self.node(node.right),
            }
        }
        false
    }

    /// The minimum item.
    pub fn min(&self) -> Option<&T> {
        leftmost(&self.nodes, self.root)
    }

    /// The maximum item.
    pub fn max(&self) -> Option<&T> {
        let mut n = self.node(self.root)?;
        while let Some(r) = self.node(n.right) {
            n = r;
        }
        Some(&n.item)
    }

    /// In-order iterator over stored items.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter::new(&self.nodes, self.root)
    }

    /// Visits, in order, every stored item together with its tag — the
    /// traversal snapshot/restore uses to persist arrival positions
    /// alongside the sorted stream (tags are invisible to [`iter`](Self::iter)).
    pub fn for_each_tagged(&self, f: &mut dyn FnMut(&T, u64)) {
        fn walk<'a, T>(nodes: &'a [Node<T>], link: u32, f: &mut dyn FnMut(&'a T, u64)) {
            let Some(node) = nodes.get(link as usize) else {
                return;
            };
            walk(nodes, node.left, f);
            f(&node.item, node.tag);
            walk(nodes, node.right, f);
        }
        walk(&self.nodes, self.root, f);
    }

    /// Tree height (diagnostics; expected O(log n)).
    pub fn height(&self) -> usize {
        fn h<T>(nodes: &[Node<T>], link: u32) -> usize {
            nodes
                .get(link as usize)
                .map_or(0, |n| 1 + h(nodes, n.left).max(h(nodes, n.right)))
        }
        h(&self.nodes, self.root)
    }
}

impl<'a, T: Ord> IntoIterator for &'a OsTree<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Ord> FromIterator<T> for OsTree<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut t = OsTree::new();
        for x in iter {
            t.insert(x);
        }
        t
    }
}

#[inline]
fn size<T>(nodes: &[Node<T>], link: u32) -> usize {
    nodes.get(link as usize).map_or(0, |n| n.size as usize)
}

/// Replaces a node's left child, refreshing both cached sizes. Reads
/// the (unchanged) right child's size from the arena; the new left
/// size is taken from `child`.
fn set_left<T>(nodes: &mut [Node<T>], i: u32, child: u32) {
    let cs = size(nodes, child) as u32;
    let right = match nodes.get(i as usize) {
        Some(n) => n.right,
        None => return,
    };
    let rs = size(nodes, right) as u32;
    if let Some(n) = nodes.get_mut(i as usize) {
        n.left = child;
        n.left_size = cs;
        n.size = 1 + cs + rs;
    }
}

/// Replaces a node's right child. The left subtree is untouched by
/// every caller, so its cached `left_size` is still valid and the
/// total needs no left-child lookup.
fn set_right<T>(nodes: &mut [Node<T>], i: u32, child: u32) {
    let cs = size(nodes, child) as u32;
    if let Some(n) = nodes.get_mut(i as usize) {
        n.right = child;
        n.size = 1 + n.left_size + cs;
    }
}

/// Shared descent of the batched counting walks: `qs` (sorted) splits
/// at each node into the prefix that descends left (per `goes_left`)
/// and the suffix that descends right carrying `acc + |left| + 1`; a
/// query reaching an empty link has accumulated its full answer.
fn multi_count<T: Ord>(
    nodes: &[Node<T>],
    link: u32,
    qs: &[T],
    acc: usize,
    out: &mut [usize],
    goes_left: &impl Fn(&T, &T) -> bool,
) {
    if qs.is_empty() {
        return;
    }
    if qs.len() == 1 {
        // A lone query needs no more partitioning: finish with the
        // plain `count_le`-style descent loop, skipping the recursion
        // frames and per-node binary searches of the general walk.
        if let (Some(q), Some(slot)) = (qs.first(), out.first_mut()) {
            let mut n = nodes.get(link as usize);
            let mut acc = acc;
            while let Some(node) = n {
                if goes_left(q, &node.item) {
                    n = nodes.get(node.left as usize);
                } else {
                    acc += node.left_size as usize + 1;
                    n = nodes.get(node.right as usize);
                }
            }
            *slot = acc;
        }
        return;
    }
    match nodes.get(link as usize) {
        None => out.fill(acc),
        Some(node) => {
            // Clustered batches (the adversary's interval scans) fall
            // entirely on one side at every node of the shared descent
            // path; probing the sorted slice's endpoints first answers
            // those nodes with one comparison instead of the log|qs|
            // partition scan.
            let split_at = if qs.last().is_some_and(|q| goes_left(q, &node.item)) {
                qs.len()
            } else if qs.first().is_some_and(|q| !goes_left(q, &node.item)) {
                0
            } else {
                qs.partition_point(|q| goes_left(q, &node.item))
            };
            let (ql, qr) = qs.split_at(split_at);
            let (ol, or) = out.split_at_mut(ql.len());
            let below = acc + node.left_size as usize + 1;
            multi_count(nodes, node.left, ql, acc, ol, goes_left);
            multi_count(nodes, node.right, qr, below, or, goes_left);
        }
    }
}

/// Batched select descent: `base` is the number of items in-order
/// before this subtree, so the node answers global rank
/// `base + |left| + 1`; smaller ranks go left, larger go right. Ranks
/// outside `(base, base + size]` fall off an empty link and stay
/// `None`.
fn multi_select_walk<'a, T: Ord>(
    nodes: &'a [Node<T>],
    link: u32,
    base: usize,
    ranks: &[usize],
    out: &mut [Option<&'a T>],
) {
    if ranks.is_empty() {
        return;
    }
    if ranks.len() == 1 {
        // Lone rank: the `select`-style descent loop.
        if let (Some(&r), Some(slot)) = (ranks.first(), out.first_mut()) {
            let mut n = nodes.get(link as usize);
            let mut base = base;
            *slot = None;
            while let Some(node) = n {
                let here = base + node.left_size as usize + 1;
                if r < here {
                    n = nodes.get(node.left as usize);
                } else if r == here {
                    *slot = Some(&node.item);
                    break;
                } else {
                    base = here;
                    n = nodes.get(node.right as usize);
                }
            }
        }
        return;
    }
    match nodes.get(link as usize) {
        None => out.fill(None),
        Some(node) => {
            let here = base + node.left_size as usize + 1;
            let (rl, rest) = ranks.split_at(ranks.partition_point(|&r| r < here));
            let (req, rr) = rest.split_at(rest.partition_point(|&r| r <= here));
            let (ol, orest) = out.split_at_mut(rl.len());
            let (oeq, orr) = orest.split_at_mut(req.len());
            multi_select_walk(nodes, node.left, base, rl, ol);
            oeq.fill(Some(&node.item));
            multi_select_walk(nodes, node.right, here, rr, orr);
        }
    }
}

/// Batched tag descent: queries equal to the node resolve here (the
/// occurrence nearest the root, as `tag_of` returns), smaller continue
/// left, larger right; a query falling off an empty link stays `None`.
fn multi_tag_walk<T: Ord>(nodes: &[Node<T>], link: u32, qs: &[T], out: &mut [Option<u64>]) {
    if qs.is_empty() {
        return;
    }
    if qs.len() == 1 {
        // Lone query: the `tag_of` descent loop.
        if let (Some(q), Some(slot)) = (qs.first(), out.first_mut()) {
            let mut n = nodes.get(link as usize);
            *slot = None;
            while let Some(node) = n {
                match q.cmp(&node.item) {
                    std::cmp::Ordering::Equal => {
                        *slot = Some(node.tag);
                        break;
                    }
                    std::cmp::Ordering::Less => n = nodes.get(node.left as usize),
                    std::cmp::Ordering::Greater => n = nodes.get(node.right as usize),
                }
            }
        }
        return;
    }
    match nodes.get(link as usize) {
        None => out.fill(None),
        Some(node) => {
            // Same endpoint probe as `multi_count`: a batch wholly on
            // one side of the node costs one comparison, not two
            // log|qs| partition scans.
            let below = if qs.last().is_some_and(|q| *q < node.item) {
                qs.len()
            } else if qs.first().is_some_and(|q| *q >= node.item) {
                0
            } else {
                qs.partition_point(|q| *q < node.item)
            };
            let (ql, rest) = qs.split_at(below);
            let (qeq, qr) = rest.split_at(rest.partition_point(|q| *q <= node.item));
            let (ol, orest) = out.split_at_mut(ql.len());
            let (oeq, orr) = orest.split_at_mut(qeq.len());
            multi_tag_walk(nodes, node.left, ql, ol);
            oeq.fill(Some(node.tag));
            multi_tag_walk(nodes, node.right, qr, orr);
        }
    }
}

/// Splits into `out = (items < key, items >= key)`. The key is
/// external to the arena (an item being inserted or removed), so
/// comparing it never aliases the mutable arena borrow. The halves
/// land in an out-parameter: the purity analysis then sees the links
/// as the indices they are — only the `goes_right` comparison touches
/// the key — and the size bookkeeping below stays certified.
fn split<T: Ord>(nodes: &mut [Node<T>], link: u32, key: &T, out: &mut (u32, u32)) {
    let (goes_right, left, right) = match nodes.get(link as usize) {
        Some(n) => (*key > n.item, n.left, n.right),
        None => {
            *out = (NIL, NIL);
            return;
        }
    };
    if goes_right {
        split(nodes, right, key, out);
        set_right(nodes, link, out.0);
        out.0 = link;
    } else {
        split(nodes, left, key, out);
        set_left(nodes, link, out.1);
        out.1 = link;
    }
}

/// Splits into `out = (items <= key, items > key)`.
fn split_gt<T: Ord>(nodes: &mut [Node<T>], link: u32, key: &T, out: &mut (u32, u32)) {
    let (goes_right, left, right) = match nodes.get(link as usize) {
        Some(n) => (*key >= n.item, n.left, n.right),
        None => {
            *out = (NIL, NIL);
            return;
        }
    };
    if goes_right {
        split_gt(nodes, right, key, out);
        set_right(nodes, link, out.0);
        out.0 = link;
    } else {
        split_gt(nodes, left, key, out);
        set_left(nodes, link, out.1);
        out.1 = link;
    }
}

/// [`split`] keyed by a node *inside* the arena (identified by index,
/// so no item borrow outlives the mutable arena borrow); used by
/// [`union`], whose pivot item lives in the same arena as the subtree
/// being split.
fn split_idx<T: Ord>(nodes: &mut [Node<T>], link: u32, key: u32) -> (u32, u32) {
    let (less, left, right) = match (nodes.get(link as usize), nodes.get(key as usize)) {
        (Some(n), Some(k)) => (n.item < k.item, n.left, n.right),
        _ => return (NIL, NIL),
    };
    if less {
        let (a, b) = split_idx(nodes, right, key);
        set_right(nodes, link, a);
        (link, b)
    } else {
        let (a, b) = split_idx(nodes, left, key);
        set_left(nodes, link, b);
        (a, link)
    }
}

fn merge<T: Ord>(nodes: &mut [Node<T>], a: u32, b: u32) -> u32 {
    let (pa, pb) = match (nodes.get(a as usize), nodes.get(b as usize)) {
        (None, _) => return b,
        (_, None) => return a,
        (Some(an), Some(bn)) => (an.pri, bn.pri),
    };
    if pa >= pb {
        let ar = nodes.get(a as usize).map_or(NIL, |n| n.right);
        let m = merge(nodes, ar, b);
        set_right(nodes, a, m);
        a
    } else {
        let bl = nodes.get(b as usize).map_or(NIL, |n| n.left);
        let m = merge(nodes, a, bl);
        set_left(nodes, b, m);
        b
    }
}

/// Minimum item of a subtree, if any (no mutation, no allocation).
fn leftmost<T>(nodes: &[Node<T>], link: u32) -> Option<&T> {
    let mut n = nodes.get(link as usize)?;
    while let Some(l) = nodes.get(n.left as usize) {
        n = l;
    }
    Some(&n.item)
}

/// Treap union: the higher-priority root stays a root, the other tree
/// is split by its item, and the halves recurse. O(m·log(n/m))
/// expected in general; when the smaller tree's key range contains no
/// items of the larger one (the adversary's leaf case) the recursion
/// degenerates into a single split path, i.e. O(m + log n).
fn union<T: Ord>(nodes: &mut [Node<T>], a: u32, b: u32) -> u32 {
    let (pa, pb) = match (nodes.get(a as usize), nodes.get(b as usize)) {
        (None, _) => return b,
        (_, None) => return a,
        (Some(an), Some(bn)) => (an.pri, bn.pri),
    };
    let (root, other) = if pa >= pb { (a, b) } else { (b, a) };
    let (lt, ge) = split_idx(nodes, other, root);
    let (rl, rr) = match nodes.get(root as usize) {
        Some(n) => (n.left, n.right),
        None => (NIL, NIL),
    };
    let nl = union(nodes, rl, lt);
    let nr = union(nodes, rr, ge);
    // set_left's size total is transiently stale (it reads the old
    // right child); set_right recomputes it from the fresh left_size.
    set_left(nodes, root, nl);
    set_right(nodes, root, nr);
    root
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_sorted_vec_reference(xs in proptest::collection::vec(0u32..1000, 0..300)) {
            let mut t = OsTree::new();
            let mut reference = Vec::new();
            for &x in &xs {
                t.insert(x);
                reference.push(x);
            }
            reference.sort_unstable();
            prop_assert_eq!(t.len(), reference.len());
            let collected: Vec<u32> = t.iter().copied().collect();
            prop_assert_eq!(&collected, &reference);
            for q in [0u32, 1, 500, 999, 1000] {
                prop_assert_eq!(t.count_less(&q), reference.iter().filter(|&&x| x < q).count());
                prop_assert_eq!(t.count_le(&q), reference.iter().filter(|&&x| x <= q).count());
                let suc = reference.iter().find(|&&x| x > q);
                prop_assert_eq!(t.successor(&q), suc);
                let pre = reference.iter().rev().find(|&&x| x < q);
                prop_assert_eq!(t.predecessor(&q), pre);
            }
            for r in 1..=reference.len() {
                prop_assert_eq!(t.select(r), Some(&reference[r - 1]));
            }
        }

        #[test]
        fn insert_remove_differential(ops in proptest::collection::vec((any::<bool>(), 0u32..50), 1..400)) {
            // Differential test: treap vs sorted Vec under a random
            // interleaving of inserts and removes.
            let mut t = OsTree::new();
            let mut reference: Vec<u32> = Vec::new();
            for (is_insert, x) in ops {
                if is_insert {
                    t.insert(x);
                    let pos = reference.partition_point(|&v| v <= x);
                    reference.insert(pos, x);
                } else {
                    let removed = t.remove(&x);
                    let expected = reference.iter().position(|&v| v == x);
                    prop_assert_eq!(removed, expected.is_some());
                    if let Some(i) = expected {
                        reference.remove(i);
                    }
                }
                prop_assert_eq!(t.len(), reference.len());
            }
            let collected: Vec<u32> = t.iter().copied().collect();
            prop_assert_eq!(collected, reference.clone());
            for q in [0u32, 10, 25, 49] {
                prop_assert_eq!(t.count_less(&q), reference.iter().filter(|&&x| x < q).count());
            }
        }

        #[test]
        fn rank_select_roundtrip(xs in proptest::collection::hash_set(0u64..100_000, 1..200)) {
            let mut t = OsTree::new();
            for &x in &xs {
                t.insert(x);
            }
            for &x in &xs {
                let r = t.rank(&x);
                prop_assert_eq!(t.select(r), Some(&x));
            }
        }

        #[test]
        fn batched_walks_match_single_queries(
            xs in proptest::collection::vec(0u64..600, 0..250),
            mut qs in proptest::collection::vec(0u64..650, 0..80),
        ) {
            // Property: one batched walk == m single walks, for every
            // operation, on arbitrary multisets and query sets.
            let mut t = OsTree::new();
            for &x in &xs {
                t.insert(x);
            }
            qs.sort_unstable();
            let (mut le, mut less, mut ranks) = (Vec::new(), Vec::new(), Vec::new());
            t.multi_count_le(&qs, &mut le);
            t.multi_count_less(&qs, &mut less);
            t.multi_rank(&qs, &mut ranks);
            for ((q, &l), (&ls, &r)) in qs.iter().zip(&le).zip(less.iter().zip(&ranks)) {
                prop_assert_eq!(l, t.count_le(q));
                prop_assert_eq!(ls, t.count_less(q));
                prop_assert_eq!(r, t.rank(q));
            }
            let rs: Vec<usize> = (0..=t.len() + 1).collect();
            let mut sel = Vec::new();
            t.multi_select(&rs, &mut sel);
            for (&r, &s) in rs.iter().zip(&sel) {
                prop_assert_eq!(s, t.select(r));
            }
        }

        #[test]
        fn batched_tags_match_single_lookups(
            xs in proptest::collection::hash_set(0u64..400, 1..120),
            mut qs in proptest::collection::vec(0u64..450, 0..60),
        ) {
            let mut t = OsTree::new();
            for (i, &x) in xs.iter().enumerate() {
                prop_assert!(t.insert_unique_tagged(x, i as u64));
            }
            qs.sort_unstable();
            let mut tags = Vec::new();
            t.multi_tag_of(&qs, &mut tags);
            for (q, &tag) in qs.iter().zip(&tags) {
                prop_assert_eq!(tag, t.tag_of(q));
            }
        }

        #[test]
        fn removed_slots_are_reused(ops in proptest::collection::vec(0u32..40, 1..200)) {
            // Arena discipline: interleaved insert/remove pairs must not
            // grow the arena beyond the peak live count.
            let mut t = OsTree::new();
            for (i, &x) in ops.iter().enumerate() {
                t.insert(x);
                if i % 2 == 1 {
                    prop_assert!(t.remove(&x));
                }
            }
            let live = t.len();
            prop_assert!(t.arena_slots() <= ops.len());
            prop_assert!(t.arena_slots() >= live);
        }
    }
}

#[cfg(all(test, feature = "proptest"))]
impl<T: Ord> OsTree<T> {
    /// Total arena slots (live + freed); test-only introspection.
    fn arena_slots(&self) -> usize {
        self.nodes.len()
    }
}
