//! Treap internals: split/merge with subtree-size augmentation.

use crate::iter::Iter;

pub(crate) struct Node<T> {
    pub(crate) item: T,
    pri: u64,
    size: usize,
    tag: u64,
    pub(crate) left: Link<T>,
    pub(crate) right: Link<T>,
}

pub(crate) type Link<T> = Option<Box<Node<T>>>;

impl<T> Node<T> {
    fn new(item: T, pri: u64, tag: u64) -> Box<Self> {
        Box::new(Node {
            item,
            pri,
            size: 1,
            tag,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.size = 1 + size(&self.left) + size(&self.right);
    }
}

#[inline]
fn size<T>(link: &Link<T>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

/// A multiset ordered by `T: Ord`, supporting order statistics.
///
/// See the crate docs for the operation set. All operations are
/// O(log n) expected; shape is deterministic given the seed and the
/// insert sequence.
pub struct OsTree<T> {
    root: Link<T>,
    rng: u64,
}

impl<T: Ord> Default for OsTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> OsTree<T> {
    /// An empty tree with the default priority seed.
    pub fn new() -> Self {
        Self::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// An empty tree whose priority sequence starts from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        OsTree {
            root: None,
            rng: seed | 1,
        }
    }

    fn next_pri(&mut self) -> u64 {
        // SplitMix64: deterministic, well-distributed priorities.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts `item`; duplicates are kept (multiset semantics).
    pub fn insert(&mut self, item: T) {
        self.insert_tagged(item, 0);
    }

    /// Inserts `item` carrying a 64-bit tag — an augmentation slot each
    /// node stores alongside the item (the adversary keeps the arrival
    /// position there, fusing what used to be a parallel
    /// `BTreeMap<Item, u64>` walk into this one). Duplicates are kept.
    pub fn insert_tagged(&mut self, item: T, tag: u64) {
        let pri = self.next_pri();
        let root = self.root.take();
        let (lt, ge) = split(root, &item);
        let node = Node::new(item, pri, tag);
        self.root = merge(merge(lt, Some(node)), ge);
    }

    /// Inserts `item` with `tag` only if no equal item is stored;
    /// returns whether the insert happened. Costs a single descent, so
    /// callers needing set (not multiset) semantics get the duplicate
    /// check for free instead of paying a separate `contains` walk.
    pub fn insert_unique_tagged(&mut self, item: T, tag: u64) -> bool {
        let pri = self.next_pri();
        let root = self.root.take();
        let (lt, ge) = split(root, &item);
        // `ge` holds everything ≥ item, so an equal occurrence, if any,
        // is exactly its minimum.
        if leftmost(&ge).is_some_and(|m| *m == item) {
            self.root = merge(lt, ge);
            return false;
        }
        let node = Node::new(item, pri, tag);
        self.root = merge(merge(lt, Some(node)), ge);
        true
    }

    /// The tag of a stored occurrence of `q` (the one nearest the root
    /// if duplicates exist), or `None` if `q` is not stored.
    pub fn tag_of(&self, q: &T) -> Option<u64> {
        let mut n = self.root.as_deref();
        while let Some(node) = n {
            match q.cmp(&node.item) {
                std::cmp::Ordering::Equal => return Some(node.tag),
                std::cmp::Ordering::Less => n = node.left.as_deref(),
                std::cmp::Ordering::Greater => n = node.right.as_deref(),
            }
        }
        None
    }

    /// Bulk insert of a non-decreasing run: builds a treap from the run
    /// in O(m) (stack-based Cartesian construction over the drawn
    /// priorities) and joins it with the existing tree in
    /// O(m + log n) expected when the run occupies a key range free of
    /// existing items (the adversary's leaf case), degrading gracefully
    /// to a treap union — O(m·log(n/m)) expected — under arbitrary
    /// interleaving. Equivalent to calling [`insert`](Self::insert) per
    /// item: same multiset, same order-statistic answers.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `items` is sorted non-decreasingly.
    pub fn extend_sorted<I: IntoIterator<Item = T>>(&mut self, items: I) {
        self.extend_sorted_tagged(items.into_iter().map(|it| (it, 0)));
    }

    /// [`extend_sorted`](Self::extend_sorted) with a tag per item (see
    /// [`insert_tagged`](Self::insert_tagged)).
    pub fn extend_sorted_tagged<I: IntoIterator<Item = (T, u64)>>(&mut self, pairs: I) {
        let run = self.build_sorted(pairs);
        let root = self.root.take();
        self.root = union(root, run);
    }

    /// Builds a heap-ordered treap from non-decreasing `pairs` in one
    /// pass: the stack holds the right spine; each new (rightmost) node
    /// absorbs the popped lower-priority suffix as its left subtree.
    fn build_sorted<I: IntoIterator<Item = (T, u64)>>(&mut self, pairs: I) -> Link<T> {
        let mut spine: Vec<Box<Node<T>>> = Vec::new();
        for (item, tag) in pairs {
            debug_assert!(
                spine.last().is_none_or(|top| top.item <= item),
                "extend_sorted run is not sorted"
            );
            let pri = self.next_pri();
            let mut node = Node::new(item, pri, tag);
            let mut carry: Link<T> = None;
            while spine.last().is_some_and(|top| top.pri < pri) {
                let mut top = spine.pop().expect("checked non-empty");
                top.right = carry.take();
                top.update();
                carry = Some(top);
            }
            node.left = carry;
            node.update();
            spine.push(node);
        }
        // Re-attach the remaining spine bottom-up.
        let mut right: Link<T> = None;
        while let Some(mut n) = spine.pop() {
            n.right = right.take();
            n.update();
            right = Some(n);
        }
        right
    }

    /// Removes one occurrence of `item`; returns whether anything was
    /// removed. O(log n) expected.
    pub fn remove(&mut self, item: &T) -> bool {
        let root = self.root.take();
        let (lt, ge) = split(root, item);
        // Split off the run of items equal to `item`, drop one.
        let (eq, gt) = split_gt(ge, item);
        let (removed, eq) = drop_one(eq);
        self.root = merge(merge(lt, eq), gt);
        removed
    }

    /// Number of stored items strictly inside the open range `(lo, hi)`.
    pub fn count_between(&self, lo: &T, hi: &T) -> usize {
        if lo >= hi {
            return 0;
        }
        self.count_less(hi) - self.count_le(lo)
    }

    /// In-order items within the closed range `[lo, hi]`, collected.
    pub fn range_items(&self, lo: &T, hi: &T) -> Vec<&T> {
        let mut out = Vec::new();
        fn walk<'a, T: Ord>(link: &'a Link<T>, lo: &T, hi: &T, out: &mut Vec<&'a T>) {
            let Some(node) = link.as_deref() else { return };
            if node.item >= *lo {
                walk(&node.left, lo, hi, out);
            }
            if node.item >= *lo && node.item <= *hi {
                out.push(&node.item);
            }
            if node.item <= *hi {
                walk(&node.right, lo, hi, out);
            }
        }
        walk(&self.root, lo, hi, &mut out);
        out
    }

    /// Number of stored items strictly smaller than `q`.
    pub fn count_less(&self, q: &T) -> usize {
        let mut n = self.root.as_deref();
        let mut acc = 0;
        while let Some(node) = n {
            if node.item < *q {
                acc += size(&node.left) + 1;
                n = node.right.as_deref();
            } else {
                n = node.left.as_deref();
            }
        }
        acc
    }

    /// Number of stored items `<= q`.
    pub fn count_le(&self, q: &T) -> usize {
        let mut n = self.root.as_deref();
        let mut acc = 0;
        while let Some(node) = n {
            if node.item <= *q {
                acc += size(&node.left) + 1;
                n = node.right.as_deref();
            } else {
                n = node.left.as_deref();
            }
        }
        acc
    }

    /// The 1-based rank of `q`: one more than the number of items
    /// strictly smaller (the paper's `rank_σ`, well-defined because the
    /// adversarial streams contain distinct items).
    pub fn rank(&self, q: &T) -> usize {
        self.count_less(q) + 1
    }

    /// The item of 1-based rank `r` (i.e. the r-th smallest), if any.
    pub fn select(&self, r: usize) -> Option<&T> {
        if r == 0 || r > self.len() {
            return None;
        }
        let mut n = self.root.as_deref();
        let mut r = r;
        while let Some(node) = n {
            let ls = size(&node.left);
            if r == ls + 1 {
                return Some(&node.item);
            } else if r <= ls {
                n = node.left.as_deref();
            } else {
                r -= ls + 1;
                n = node.right.as_deref();
            }
        }
        None
    }

    /// Smallest stored item strictly greater than `q` — the paper's
    /// `next(σ, q)`.
    pub fn successor(&self, q: &T) -> Option<&T> {
        let mut n = self.root.as_deref();
        let mut best = None;
        while let Some(node) = n {
            if node.item > *q {
                best = Some(&node.item);
                n = node.left.as_deref();
            } else {
                n = node.right.as_deref();
            }
        }
        best
    }

    /// Largest stored item strictly smaller than `q` — the paper's
    /// `prev(σ, q)`.
    pub fn predecessor(&self, q: &T) -> Option<&T> {
        let mut n = self.root.as_deref();
        let mut best = None;
        while let Some(node) = n {
            if node.item < *q {
                best = Some(&node.item);
                n = node.right.as_deref();
            } else {
                n = node.left.as_deref();
            }
        }
        best
    }

    /// Whether `q` is stored.
    pub fn contains(&self, q: &T) -> bool {
        let mut n = self.root.as_deref();
        while let Some(node) = n {
            match q.cmp(&node.item) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => n = node.left.as_deref(),
                std::cmp::Ordering::Greater => n = node.right.as_deref(),
            }
        }
        false
    }

    /// The minimum item.
    pub fn min(&self) -> Option<&T> {
        let mut n = self.root.as_deref()?;
        while let Some(l) = n.left.as_deref() {
            n = l;
        }
        Some(&n.item)
    }

    /// The maximum item.
    pub fn max(&self) -> Option<&T> {
        let mut n = self.root.as_deref()?;
        while let Some(r) = n.right.as_deref() {
            n = r;
        }
        Some(&n.item)
    }

    /// In-order iterator over stored items.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter::new(&self.root)
    }

    /// Tree height (diagnostics; expected O(log n)).
    pub fn height(&self) -> usize {
        fn h<T>(link: &Link<T>) -> usize {
            link.as_ref().map_or(0, |n| 1 + h(&n.left).max(h(&n.right)))
        }
        h(&self.root)
    }
}

impl<'a, T: Ord> IntoIterator for &'a OsTree<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Ord> FromIterator<T> for OsTree<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut t = OsTree::new();
        for x in iter {
            t.insert(x);
        }
        t
    }
}

/// Splits into (items <= key, items > key).
fn split_gt<T: Ord>(link: Link<T>, key: &T) -> (Link<T>, Link<T>) {
    match link {
        None => (None, None),
        Some(mut node) => {
            if node.item <= *key {
                let (a, b) = split_gt(node.right.take(), key);
                node.right = a;
                node.update();
                (Some(node), b)
            } else {
                let (a, b) = split_gt(node.left.take(), key);
                node.left = b;
                node.update();
                (a, Some(node))
            }
        }
    }
}

/// Removes one node from a (small) subtree of equal items; returns
/// whether one was removed and the remainder.
fn drop_one<T: Ord>(link: Link<T>) -> (bool, Link<T>) {
    match link {
        None => (false, None),
        Some(mut node) => {
            let rest = merge(node.left.take(), node.right.take());
            (true, rest)
        }
    }
}

/// Splits into (items < key, items >= key).
fn split<T: Ord>(link: Link<T>, key: &T) -> (Link<T>, Link<T>) {
    match link {
        None => (None, None),
        Some(mut node) => {
            if node.item < *key {
                let (a, b) = split(node.right.take(), key);
                node.right = a;
                node.update();
                (Some(node), b)
            } else {
                let (a, b) = split(node.left.take(), key);
                node.left = b;
                node.update();
                (a, Some(node))
            }
        }
    }
}

fn merge<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut an), Some(mut bn)) => {
            if an.pri >= bn.pri {
                an.right = merge(an.right.take(), Some(bn));
                an.update();
                Some(an)
            } else {
                bn.left = merge(Some(an), bn.left.take());
                bn.update();
                Some(bn)
            }
        }
    }
}

/// Minimum item of a subtree, if any (no mutation, no allocation).
fn leftmost<T>(link: &Link<T>) -> Option<&T> {
    let mut n = link.as_deref()?;
    while let Some(l) = n.left.as_deref() {
        n = l;
    }
    Some(&n.item)
}

/// Treap union: the higher-priority root stays a root, the other tree
/// is split by its item, and the halves recurse. O(m·log(n/m))
/// expected in general; when the smaller tree's key range contains no
/// items of the larger one (the adversary's leaf case) the recursion
/// degenerates into a single split path, i.e. O(m + log n).
fn union<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(an), Some(bn)) => {
            let (mut root, other) = if an.pri >= bn.pri { (an, bn) } else { (bn, an) };
            let (lt, ge) = split(Some(other), &root.item);
            root.left = union(root.left.take(), lt);
            root.right = union(root.right.take(), ge);
            root.update();
            Some(root)
        }
    }
}

impl<T> Drop for OsTree<T> {
    fn drop(&mut self) {
        // Iterative drop: a degenerate chain must not overflow the stack.
        let mut stack = Vec::new();
        if let Some(root) = self.root.take() {
            stack.push(root);
        }
        while let Some(mut node) = stack.pop() {
            if let Some(l) = node.left.take() {
                stack.push(l);
            }
            if let Some(r) = node.right.take() {
                stack.push(r);
            }
        }
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_sorted_vec_reference(xs in proptest::collection::vec(0u32..1000, 0..300)) {
            let mut t = OsTree::new();
            let mut reference = Vec::new();
            for &x in &xs {
                t.insert(x);
                reference.push(x);
            }
            reference.sort_unstable();
            prop_assert_eq!(t.len(), reference.len());
            let collected: Vec<u32> = t.iter().copied().collect();
            prop_assert_eq!(&collected, &reference);
            for q in [0u32, 1, 500, 999, 1000] {
                prop_assert_eq!(t.count_less(&q), reference.iter().filter(|&&x| x < q).count());
                prop_assert_eq!(t.count_le(&q), reference.iter().filter(|&&x| x <= q).count());
                let suc = reference.iter().find(|&&x| x > q);
                prop_assert_eq!(t.successor(&q), suc);
                let pre = reference.iter().rev().find(|&&x| x < q);
                prop_assert_eq!(t.predecessor(&q), pre);
            }
            for r in 1..=reference.len() {
                prop_assert_eq!(t.select(r), Some(&reference[r - 1]));
            }
        }

        #[test]
        fn insert_remove_differential(ops in proptest::collection::vec((any::<bool>(), 0u32..50), 1..400)) {
            // Differential test: treap vs sorted Vec under a random
            // interleaving of inserts and removes.
            let mut t = OsTree::new();
            let mut reference: Vec<u32> = Vec::new();
            for (is_insert, x) in ops {
                if is_insert {
                    t.insert(x);
                    let pos = reference.partition_point(|&v| v <= x);
                    reference.insert(pos, x);
                } else {
                    let removed = t.remove(&x);
                    let expected = reference.iter().position(|&v| v == x);
                    prop_assert_eq!(removed, expected.is_some());
                    if let Some(i) = expected {
                        reference.remove(i);
                    }
                }
                prop_assert_eq!(t.len(), reference.len());
            }
            let collected: Vec<u32> = t.iter().copied().collect();
            prop_assert_eq!(collected, reference.clone());
            for q in [0u32, 10, 25, 49] {
                prop_assert_eq!(t.count_less(&q), reference.iter().filter(|&&x| x < q).count());
            }
        }

        #[test]
        fn rank_select_roundtrip(xs in proptest::collection::hash_set(0u64..100_000, 1..200)) {
            let mut t = OsTree::new();
            for &x in &xs {
                t.insert(x);
            }
            for &x in &xs {
                let r = t.rank(&x);
                prop_assert_eq!(t.select(r), Some(&x));
            }
        }
    }
}
