#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! An order-statistic treap.
//!
//! The lower-bound adversary of Cormode & Veselý needs, for each of the
//! two streams it grows, the quantities `rank_σ(a)` (position of item `a`
//! in the sorted order of stream σ), `next(σ, a)` (the successor of `a`
//! among σ's items) and `prev(σ, b)` — over streams that grow to millions
//! of items. This crate provides those operations in O(log n) expected
//! time via a randomized balanced BST (treap) augmented with subtree
//! sizes.
//!
//! Priorities come from an internal deterministic SplitMix64 sequence, so
//! a tree built by the same sequence of inserts always has the same
//! shape: every experiment in this repository is exactly replayable.
//!
//! # Example
//!
//! ```
//! use cqs_ostree::OsTree;
//!
//! let mut t = OsTree::new();
//! for x in [50, 10, 30, 20, 40] {
//!     t.insert(x);
//! }
//! assert_eq!(t.len(), 5);
//! assert_eq!(t.rank(&30), 3);          // 1-based rank
//! assert_eq!(t.select(4), Some(&40));  // 1-based select
//! assert_eq!(t.successor(&30), Some(&40));
//! assert_eq!(t.predecessor(&30), Some(&20));
//! ```

mod iter;
mod runs;
mod tree;

pub use iter::Iter;
pub use runs::{Fragment, Locate, RunTree};
pub use tree::OsTree;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_behaviour() {
        let t: OsTree<u32> = OsTree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.select(1), None);
        assert_eq!(t.successor(&5), None);
        assert_eq!(t.predecessor(&5), None);
        assert_eq!(t.count_less(&5), 0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn rank_counts_strictly_smaller_plus_one() {
        let mut t = OsTree::new();
        for x in [2u32, 4, 6, 8] {
            t.insert(x);
        }
        assert_eq!(t.rank(&2), 1);
        assert_eq!(t.rank(&8), 4);
        // rank of an absent item is still well-defined: 1 + #smaller.
        assert_eq!(t.rank(&5), 3);
        assert_eq!(t.rank(&1), 1);
        assert_eq!(t.rank(&9), 5);
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let mut t = OsTree::new();
        let xs: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        for &x in &xs {
            t.insert(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for (i, x) in sorted.iter().enumerate() {
            assert_eq!(t.select(i + 1), Some(x));
        }
    }

    #[test]
    fn successor_predecessor_on_present_and_absent() {
        let mut t = OsTree::new();
        for x in [10u32, 20, 30] {
            t.insert(x);
        }
        assert_eq!(t.successor(&10), Some(&20));
        assert_eq!(t.successor(&15), Some(&20));
        assert_eq!(t.successor(&30), None);
        assert_eq!(t.predecessor(&30), Some(&20));
        assert_eq!(t.predecessor(&25), Some(&20));
        assert_eq!(t.predecessor(&10), None);
        assert_eq!(t.successor(&0), Some(&10));
        assert_eq!(t.predecessor(&99), Some(&30));
    }

    #[test]
    fn min_max_and_iteration() {
        let mut t = OsTree::new();
        for x in [5u32, 1, 9, 3, 7] {
            t.insert(x);
        }
        assert_eq!(t.min(), Some(&1));
        assert_eq!(t.max(), Some(&9));
        let collected: Vec<u32> = t.iter().copied().collect();
        assert_eq!(collected, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicates_are_supported() {
        let mut t = OsTree::new();
        for x in [5u32, 5, 5, 3, 7] {
            t.insert(x);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.count_less(&5), 1);
        assert_eq!(t.count_le(&5), 4);
        assert_eq!(t.rank(&5), 2);
    }

    #[test]
    fn contains_works() {
        let mut t = OsTree::new();
        t.insert(42u32);
        assert!(t.contains(&42));
        assert!(!t.contains(&41));
    }

    #[test]
    fn large_sequential_insert_stays_balanced_enough() {
        // Sequential inserts are the worst case for an unbalanced BST;
        // the treap must stay logarithmic.
        let mut t = OsTree::new();
        for x in 0..100_000u64 {
            t.insert(x);
        }
        assert_eq!(t.len(), 100_000);
        assert_eq!(t.rank(&50_000), 50_001);
        assert_eq!(t.select(99_999), Some(&99_998));
        assert!(t.height() < 80, "treap height degenerate: {}", t.height());
    }

    #[test]
    fn deterministic_shape_across_builds() {
        let build = || {
            let mut t = OsTree::with_seed(7);
            for x in 0..1000u32 {
                t.insert(x.wrapping_mul(2654435761) % 4096);
            }
            t.height()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn remove_deletes_single_occurrence() {
        let mut t = OsTree::new();
        for x in [5u32, 5, 7, 3] {
            t.insert(x);
        }
        assert!(t.remove(&5));
        assert_eq!(t.len(), 3);
        assert!(t.contains(&5), "one copy must remain");
        assert!(t.remove(&5));
        assert!(!t.contains(&5));
        assert!(!t.remove(&99), "absent item is not removed");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_keeps_order_statistics_consistent() {
        let mut t = OsTree::new();
        for x in 0..1000u64 {
            t.insert(x);
        }
        for x in (0..1000u64).step_by(2) {
            assert!(t.remove(&x));
        }
        assert_eq!(t.len(), 500);
        // Remaining are the odds; rank of 501 = 251.
        assert_eq!(t.rank(&501), 251);
        assert_eq!(t.select(1), Some(&1));
        assert_eq!(t.max(), Some(&999));
        assert_eq!(t.successor(&1), Some(&3));
    }

    #[test]
    fn count_between_and_range_visit() {
        let mut t = OsTree::new();
        for x in 0..100u32 {
            t.insert(x);
        }
        assert_eq!(t.count_between(&10, &20), 9);
        assert_eq!(t.count_between(&20, &10), 0);
        let mut vals: Vec<u32> = Vec::new();
        t.for_each_in_range(&10, &14, &mut |&x| vals.push(x));
        assert_eq!(vals, vec![10, 11, 12, 13, 14]);
        let mut none = 0usize;
        t.for_each_in_range(&200, &300, &mut |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn multi_count_rank_select_match_single_queries() {
        // Differential: every batched answer must equal its one-walk
        // counterpart, on a tree with duplicates and over query sets
        // containing absent, duplicate, and boundary values.
        let mut t = OsTree::new();
        for x in [5u32, 5, 9, 9, 9, 12, 40, 41, 60] {
            t.insert(x);
        }
        let qs: Vec<u32> = vec![0, 4, 5, 5, 8, 9, 10, 40, 42, 60, 61, 100];
        let mut le = Vec::new();
        let mut less = Vec::new();
        let mut ranks = Vec::new();
        t.multi_count_le(&qs, &mut le);
        t.multi_count_less(&qs, &mut less);
        t.multi_rank(&qs, &mut ranks);
        for ((q, (&l, &ls)), &r) in qs.iter().zip(le.iter().zip(&less)).zip(&ranks) {
            assert_eq!(l, t.count_le(q), "count_le diverged at {q}");
            assert_eq!(ls, t.count_less(q), "count_less diverged at {q}");
            assert_eq!(r, t.rank(q), "rank diverged at {q}");
        }
        let rs: Vec<usize> = (0..=t.len() + 2).collect();
        let mut sel = Vec::new();
        t.multi_select(&rs, &mut sel);
        for (&r, &s) in rs.iter().zip(&sel) {
            assert_eq!(s, t.select(r), "select diverged at rank {r}");
        }
    }

    #[test]
    fn multi_tag_of_matches_single_lookups() {
        let mut t = OsTree::new();
        for (i, x) in [10u32, 20, 30, 40].iter().enumerate() {
            assert!(t.insert_unique_tagged(*x, 100 + i as u64));
        }
        let qs: Vec<u32> = vec![5, 10, 15, 20, 20, 40, 99];
        let mut tags = Vec::new();
        t.multi_tag_of(&qs, &mut tags);
        for (q, &tag) in qs.iter().zip(&tags) {
            assert_eq!(tag, t.tag_of(q), "tag diverged at {q}");
        }
    }

    #[test]
    fn multi_queries_on_empty_tree() {
        let t: OsTree<u32> = OsTree::new();
        let (mut le, mut sel, mut tags) = (Vec::new(), Vec::new(), Vec::new());
        t.multi_count_le(&[1, 2, 3], &mut le);
        assert_eq!(le, vec![0, 0, 0]);
        t.multi_select(&[0, 1, 2], &mut sel);
        assert_eq!(sel, vec![None, None, None]);
        t.multi_tag_of(&[7], &mut tags);
        assert_eq!(tags, vec![None]);
        t.multi_count_le(&[], &mut le);
        assert!(le.is_empty());
    }

    #[test]
    fn extend_sorted_matches_per_item_insert() {
        // Equivalence: same multiset → same rank/select/successor/
        // predecessor answers, regardless of how the items arrived.
        let runs: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            (0..500).collect(),
            (0..100).map(|i| i * 3 % 97).collect::<Vec<u64>>(),
            vec![5, 5, 5, 9, 9],
        ];
        for base in [Vec::new(), (1000..1100).collect::<Vec<u64>>()] {
            for run in &runs {
                let mut sorted_run = run.clone();
                sorted_run.sort_unstable();

                let mut bulk = OsTree::with_seed(11);
                let mut single = OsTree::with_seed(11);
                for &x in &base {
                    bulk.insert(x);
                    single.insert(x);
                }
                bulk.extend_sorted(sorted_run.iter().copied());
                for &x in &sorted_run {
                    single.insert(x);
                }

                assert_eq!(bulk.len(), single.len());
                let a: Vec<u64> = bulk.iter().copied().collect();
                let b: Vec<u64> = single.iter().copied().collect();
                assert_eq!(a, b, "in-order traversal diverged");
                for q in [0u64, 5, 9, 50, 96, 150, 1000, 1099, 2000] {
                    assert_eq!(bulk.rank(&q), single.rank(&q));
                    assert_eq!(bulk.count_le(&q), single.count_le(&q));
                    assert_eq!(bulk.successor(&q), single.successor(&q));
                    assert_eq!(bulk.predecessor(&q), single.predecessor(&q));
                }
                for r in 1..=bulk.len() {
                    assert_eq!(bulk.select(r), single.select(r));
                }
            }
        }
    }

    #[test]
    fn extend_sorted_interleaves_with_existing_items() {
        // The run's key range overlaps the existing tree item-by-item.
        let mut bulk = OsTree::with_seed(3);
        let mut single = OsTree::with_seed(3);
        for x in (0..1000u64).step_by(2) {
            bulk.insert(x);
            single.insert(x);
        }
        let odds: Vec<u64> = (0..1000).filter(|x| x % 2 == 1).collect();
        bulk.extend_sorted(odds.iter().copied());
        for &x in &odds {
            single.insert(x);
        }
        assert_eq!(bulk.len(), 1000);
        let a: Vec<u64> = bulk.iter().copied().collect();
        let expected: Vec<u64> = (0..1000).collect();
        assert_eq!(a, expected);
        assert_eq!(single.len(), 1000);
        assert!(bulk.height() < 80, "degenerate: {}", bulk.height());
    }

    #[test]
    fn extend_sorted_bulk_height_stays_logarithmic() {
        // An all-sorted bulk build is the shape-degeneracy worst case.
        let mut t = OsTree::new();
        t.extend_sorted(0..100_000u64);
        assert_eq!(t.len(), 100_000);
        assert_eq!(t.rank(&50_000), 50_001);
        assert!(t.height() < 80, "degenerate: {}", t.height());
    }

    #[test]
    fn tags_record_and_retrieve_per_item_payloads() {
        let mut t = OsTree::new();
        assert!(t.insert_unique_tagged(10u32, 100));
        assert!(t.insert_unique_tagged(20u32, 200));
        assert!(
            !t.insert_unique_tagged(10u32, 999),
            "duplicate must be rejected"
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.tag_of(&10), Some(100), "tag of rejected dup unchanged");
        assert_eq!(t.tag_of(&20), Some(200));
        assert_eq!(t.tag_of(&30), None);
        t.extend_sorted_tagged([(30u32, 300), (40, 400)]);
        assert_eq!(t.tag_of(&30), Some(300));
        assert_eq!(t.tag_of(&40), Some(400));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn count_in_open_interval() {
        let mut t = OsTree::new();
        for x in 0..100u32 {
            t.insert(x);
        }
        // Items strictly between 10 and 20: 11..=19 → 9 items.
        let n = t.count_less(&20) - t.count_le(&10);
        assert_eq!(n, 9);
    }
}
