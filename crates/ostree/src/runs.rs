//! An order-statistic treap over *runs* of virtual items.
//!
//! The adversary's interval-compressed stream representation stores, per
//! contiguous block of minted items, one [`Fragment`]: the block's first
//! and last (materialized) items, the count of virtual items between and
//! including them, and bookkeeping locating the block inside its minted
//! run. A [`RunTree`] keeps the fragments in label order and caches the
//! **virtual** subtree size (sum of fragment counts) at every node, so
//! rank ([`locate`](RunTree::locate)) and select
//! ([`select`](RunTree::select)) descend in O(log #fragments) while
//! representing arbitrarily many items per fragment.
//!
//! The tree compares only the fragments' endpoint items (`T: Ord`) —
//! everything *between* a fragment's endpoints is opaque to it. Point
//! queries that land inside a fragment are answered by the caller (the
//! implicit stream keeps a run-label generator per run); the tree's job
//! is to find the fragment and the virtual count to its left.
//!
//! Arena discipline, deterministic SplitMix64 priorities, and the
//! split/merge machinery mirror [`crate::OsTree`] — a tree built by the
//! same operation sequence always has the same shape.

/// Sentinel link: no child / empty tree.
const NIL: u32 = u32::MAX;

/// One contiguous block of virtual items: every item of run `run` with
/// in-run index in `[base, base + count)`. `lo` and `hi` are the
/// materialized first and last items of the block (equal when
/// `count == 1`).
#[derive(Clone, Debug)]
pub struct Fragment<T> {
    /// First item of the block (inclusive).
    pub lo: T,
    /// Last item of the block (inclusive).
    pub hi: T,
    /// Number of virtual items in the block (≥ 1).
    pub count: u64,
    /// Caller-side run identifier (index into the run-generator table).
    pub run: u32,
    /// In-run index of `lo`.
    pub base: u64,
}

struct Node<T> {
    frag: Fragment<T>,
    pri: u64,
    left: u32,
    right: u32,
    /// Virtual items in this subtree: `frag.count` + both children.
    subtotal: u64,
}

/// Where a point query landed: the virtual count strictly left of the
/// probe's fragment, the fragment containing it (if any), and the
/// in-order neighbor fragments.
pub struct Locate<'a, T> {
    /// Virtual items in fragments wholly below the probe.
    pub before: u64,
    /// The fragment with `lo <= q <= hi`, if one exists.
    pub hit: Option<&'a Fragment<T>>,
    /// Nearest fragment wholly below the probe (below `hit` when hit).
    pub pred: Option<&'a Fragment<T>>,
    /// Nearest fragment wholly above the probe (above `hit` when hit).
    pub succ: Option<&'a Fragment<T>>,
}

/// The fragment treap. See the module docs.
pub struct RunTree<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    root: u32,
    state: u64,
}

impl<T: Ord + Clone> Default for RunTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone> RunTree<T> {
    /// An empty tree with the default deterministic priority seed.
    pub fn new() -> Self {
        Self::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// An empty tree with an explicit priority seed.
    pub fn with_seed(seed: u64) -> Self {
        RunTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            state: seed,
        }
    }

    /// Total virtual items across all fragments.
    pub fn virtual_len(&self) -> u64 {
        subtotal(&self.nodes, self.root)
    }

    /// Number of stored fragments.
    pub fn fragment_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the tree stores no fragments.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Pre-allocates arena capacity for `additional` more fragments.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes
            .reserve(additional.saturating_sub(self.free.len()));
    }

    fn node(&self, link: u32) -> Option<&Node<T>> {
        self.nodes.get(link as usize)
    }

    fn frag_at(&self, link: u32) -> Option<&Fragment<T>> {
        self.node(link).map(|n| &n.frag)
    }

    /// SplitMix64 step — same deterministic sequence discipline as
    /// [`crate::OsTree`].
    fn next_pri(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn alloc(&mut self, frag: Fragment<T>) -> u32 {
        let pri = self.next_pri();
        let node = Node {
            subtotal: frag.count,
            frag,
            pri,
            left: NIL,
            right: NIL,
        };
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.nodes.get_mut(idx as usize) {
                *slot = node;
            }
            return idx;
        }
        assert!(
            self.nodes.len() < NIL as usize,
            "RunTree arena exhausted the u32 index space"
        );
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    /// Inserts a fragment. The caller guarantees its item range
    /// `[lo, hi]` is disjoint from every stored fragment's range.
    pub fn insert_fragment(&mut self, frag: Fragment<T>) {
        debug_assert!(frag.count >= 1, "fragments hold at least one item");
        debug_assert!(frag.lo <= frag.hi, "fragment endpoints out of order");
        let idx = self.alloc(frag);
        let (lt, ge) = split_idx(&mut self.nodes, self.root, idx);
        let merged = merge(&mut self.nodes, lt, idx);
        self.root = merge(&mut self.nodes, merged, ge);
    }

    /// Removes and returns the fragment whose closed range contains `q`,
    /// if any. Used to split a fragment: remove it, then insert the
    /// replacement pieces.
    pub fn remove_containing(&mut self, q: &T) -> Option<Fragment<T>> {
        let mut ab = (NIL, NIL);
        split_hi_lt(&mut self.nodes, self.root, q, &mut ab);
        let (below, rest) = ab;
        let mut bc = (NIL, NIL);
        split_lo_le(&mut self.nodes, rest, q, &mut bc);
        let (hit, above) = bc;
        let taken = self.node(hit).map(|n| {
            // Disjoint ranges: at most one fragment can contain q, so
            // the middle part is a single node.
            debug_assert!(n.left == NIL && n.right == NIL);
            n.frag.clone()
        });
        if taken.is_some() {
            self.free.push(hit);
        }
        self.root = merge(&mut self.nodes, below, above);
        taken
    }

    /// Point query: finds the fragment containing `q` (closed range),
    /// the virtual count strictly left of it, and the neighbor
    /// fragments. When no fragment contains `q`, `before` counts every
    /// virtual item in fragments below `q`.
    pub fn locate(&self, q: &T) -> Locate<'_, T> {
        let mut before = 0u64;
        let mut link = self.root;
        let mut pred = NIL;
        let mut succ = NIL;
        while let Some(node) = self.node(link) {
            if *q < node.frag.lo {
                succ = link;
                link = node.left;
            } else if *q > node.frag.hi {
                before += subtotal(&self.nodes, node.left) + node.frag.count;
                pred = link;
                link = node.right;
            } else {
                before += subtotal(&self.nodes, node.left);
                let p = rightmost(&self.nodes, node.left);
                if p != NIL {
                    pred = p;
                }
                let s = leftmost(&self.nodes, node.right);
                if s != NIL {
                    succ = s;
                }
                return Locate {
                    before,
                    hit: Some(&node.frag),
                    pred: self.frag_at(pred),
                    succ: self.frag_at(succ),
                };
            }
        }
        Locate {
            before,
            hit: None,
            pred: self.frag_at(pred),
            succ: self.frag_at(succ),
        }
    }

    /// The fragment holding the virtual item of 0-based global rank `r`,
    /// plus the item's offset within the fragment.
    pub fn select(&self, r: u64) -> Option<(&Fragment<T>, u64)> {
        let mut link = self.root;
        let mut r = r;
        while let Some(node) = self.node(link) {
            let ls = subtotal(&self.nodes, node.left);
            if r < ls {
                link = node.left;
            } else if r < ls + node.frag.count {
                return Some((&node.frag, r - ls));
            } else {
                r -= ls + node.frag.count;
                link = node.right;
            }
        }
        None
    }

    /// The lowest fragment.
    pub fn first(&self) -> Option<&Fragment<T>> {
        self.frag_at(leftmost(&self.nodes, self.root))
    }

    /// The highest fragment.
    pub fn last(&self) -> Option<&Fragment<T>> {
        self.frag_at(rightmost(&self.nodes, self.root))
    }

    /// Visits every fragment in label order.
    pub fn for_each(&self, f: &mut dyn FnMut(&Fragment<T>)) {
        fn walk<T>(nodes: &[Node<T>], link: u32, f: &mut dyn FnMut(&Fragment<T>)) {
            let Some(node) = nodes.get(link as usize) else {
                return;
            };
            walk(nodes, node.left, f);
            f(&node.frag);
            walk(nodes, node.right, f);
        }
        walk(&self.nodes, self.root, f);
    }
}

#[inline]
fn subtotal<T>(nodes: &[Node<T>], link: u32) -> u64 {
    nodes.get(link as usize).map_or(0, |n| n.subtotal)
}

fn leftmost<T>(nodes: &[Node<T>], mut link: u32) -> u32 {
    while let Some(n) = nodes.get(link as usize) {
        if n.left == NIL {
            return link;
        }
        link = n.left;
    }
    NIL
}

fn rightmost<T>(nodes: &[Node<T>], mut link: u32) -> u32 {
    while let Some(n) = nodes.get(link as usize) {
        if n.right == NIL {
            return link;
        }
        link = n.right;
    }
    NIL
}

/// Replaces a node's left child, refreshing the cached virtual subtotal.
fn set_left<T>(nodes: &mut [Node<T>], i: u32, child: u32) {
    let cs = subtotal(nodes, child);
    let right = match nodes.get(i as usize) {
        Some(n) => n.right,
        None => return,
    };
    let rs = subtotal(nodes, right);
    if let Some(n) = nodes.get_mut(i as usize) {
        n.left = child;
        n.subtotal = n.frag.count + cs + rs;
    }
}

/// Replaces a node's right child, refreshing the cached virtual subtotal.
fn set_right<T>(nodes: &mut [Node<T>], i: u32, child: u32) {
    let cs = subtotal(nodes, child);
    let left = match nodes.get(i as usize) {
        Some(n) => n.left,
        None => return,
    };
    let ls = subtotal(nodes, left);
    if let Some(n) = nodes.get_mut(i as usize) {
        n.right = child;
        n.subtotal = n.frag.count + ls + cs;
    }
}

/// Splits into `(fragments below nodes[key], the rest)`, ordering by the
/// fragments' `lo` endpoints. The pivot lives in the same arena, so it
/// is addressed by index (mirrors `OsTree`'s `split_idx`).
fn split_idx<T: Ord>(nodes: &mut [Node<T>], link: u32, key: u32) -> (u32, u32) {
    let (less, left, right) = match (nodes.get(link as usize), nodes.get(key as usize)) {
        (Some(n), Some(k)) => (n.frag.lo < k.frag.lo, n.left, n.right),
        _ => return (NIL, NIL),
    };
    if less {
        let (a, b) = split_idx(nodes, right, key);
        set_right(nodes, link, a);
        (link, b)
    } else {
        let (a, b) = split_idx(nodes, left, key);
        set_left(nodes, link, b);
        (a, link)
    }
}

/// Splits into `out = (fragments with hi < q, fragments with hi >= q)`.
/// The query is external to the arena and lands only in the comparison;
/// the halves go through an out-parameter so the links stay the plain
/// indices they are (mirrors `OsTree`'s `split`, including the
/// comparison spelled with the query on the left).
fn split_hi_lt<T: Ord>(nodes: &mut [Node<T>], link: u32, q: &T, out: &mut (u32, u32)) {
    let (goes_left, left, right) = match nodes.get(link as usize) {
        Some(n) => (*q > n.frag.hi, n.left, n.right),
        None => {
            *out = (NIL, NIL);
            return;
        }
    };
    if goes_left {
        split_hi_lt(nodes, right, q, out);
        set_right(nodes, link, out.0);
        out.0 = link;
    } else {
        split_hi_lt(nodes, left, q, out);
        set_left(nodes, link, out.1);
        out.1 = link;
    }
}

/// Splits into `out = (fragments with lo <= q, fragments with lo > q)`.
fn split_lo_le<T: Ord>(nodes: &mut [Node<T>], link: u32, q: &T, out: &mut (u32, u32)) {
    let (goes_left, left, right) = match nodes.get(link as usize) {
        Some(n) => (*q >= n.frag.lo, n.left, n.right),
        None => {
            *out = (NIL, NIL);
            return;
        }
    };
    if goes_left {
        split_lo_le(nodes, right, q, out);
        set_right(nodes, link, out.0);
        out.0 = link;
    } else {
        split_lo_le(nodes, left, q, out);
        set_left(nodes, link, out.1);
        out.1 = link;
    }
}

fn merge<T>(nodes: &mut [Node<T>], a: u32, b: u32) -> u32 {
    let (pa, pb) = match (nodes.get(a as usize), nodes.get(b as usize)) {
        (None, _) => return b,
        (_, None) => return a,
        (Some(an), Some(bn)) => (an.pri, bn.pri),
    };
    if pa >= pb {
        let ar = nodes.get(a as usize).map_or(NIL, |n| n.right);
        let m = merge(nodes, ar, b);
        set_right(nodes, a, m);
        a
    } else {
        let bl = nodes.get(b as usize).map_or(NIL, |n| n.left);
        let m = merge(nodes, a, bl);
        set_left(nodes, b, m);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: fragments in a sorted Vec.
    fn model_locate(model: &[Fragment<u64>], q: u64) -> (u64, Option<usize>) {
        let mut before = 0u64;
        for (i, f) in model.iter().enumerate() {
            if f.hi < q {
                before += f.count;
            } else if f.lo <= q {
                return (before, Some(i));
            } else {
                break;
            }
        }
        (before, None)
    }

    fn frag(lo: u64, hi: u64, count: u64, run: u32, base: u64) -> Fragment<u64> {
        Fragment {
            lo,
            hi,
            count,
            run,
            base,
        }
    }

    fn build(frags: &[Fragment<u64>]) -> RunTree<u64> {
        let mut t = RunTree::new();
        for f in frags {
            t.insert_fragment(f.clone());
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: RunTree<u64> = RunTree::new();
        assert_eq!(t.virtual_len(), 0);
        assert_eq!(t.fragment_count(), 0);
        assert!(t.is_empty());
        assert!(t.select(0).is_none());
        assert!(t.first().is_none());
        assert!(t.last().is_none());
        let l = t.locate(&5);
        assert_eq!(l.before, 0);
        assert!(l.hit.is_none() && l.pred.is_none() && l.succ.is_none());
    }

    #[test]
    fn locate_and_select_match_reference_model() {
        // Disjoint fragments with gaps, inserted out of order.
        let mut model = vec![
            frag(10, 19, 10, 0, 0),
            frag(30, 30, 1, 1, 0),
            frag(40, 59, 5, 2, 3),
            frag(70, 99, 30, 3, 0),
        ];
        let t = build(&[
            model[2].clone(),
            model[0].clone(),
            model[3].clone(),
            model[1].clone(),
        ]);
        model.sort_by_key(|f| f.lo);
        assert_eq!(t.virtual_len(), 46);
        assert_eq!(t.fragment_count(), 4);
        assert_eq!(t.first().unwrap().lo, 10);
        assert_eq!(t.last().unwrap().hi, 99);
        for q in 0..=110u64 {
            let (before, hit) = model_locate(&model, q);
            let l = t.locate(&q);
            assert_eq!(l.before, before, "before diverged at {q}");
            assert_eq!(
                l.hit.map(|f| f.run),
                hit.map(|i| model[i].run),
                "hit diverged at {q}"
            );
            // Neighbor fragments: nearest wholly-below / wholly-above.
            let pred = model
                .iter()
                .rev()
                .find(|f| f.hi < q || (hit.is_some() && f.hi < model[hit.unwrap()].lo));
            let succ = model
                .iter()
                .find(|f| f.lo > q || (hit.is_some() && f.lo > model[hit.unwrap()].hi));
            assert_eq!(
                l.pred.map(|f| f.run),
                pred.map(|f| f.run),
                "pred diverged at {q}"
            );
            assert_eq!(
                l.succ.map(|f| f.run),
                succ.map(|f| f.run),
                "succ diverged at {q}"
            );
        }
        // Select: walk the model's virtual items in order.
        let mut r = 0u64;
        for f in &model {
            for off in 0..f.count {
                let (got, goff) = t.select(r).expect("rank in range");
                assert_eq!((got.run, goff), (f.run, off), "select({r}) diverged");
                r += 1;
            }
        }
        assert!(t.select(r).is_none());
    }

    #[test]
    fn split_via_remove_and_reinsert() {
        let mut t = build(&[frag(10, 99, 90, 0, 0)]);
        // Split the fragment at virtual offsets: [10..=40], [60..=99].
        let removed = t.remove_containing(&50).expect("fragment contains 50");
        assert_eq!(removed.count, 90);
        assert_eq!(t.virtual_len(), 0);
        t.insert_fragment(frag(10, 40, 31, 0, 0));
        t.insert_fragment(frag(60, 99, 40, 0, 50));
        // Insert a new run's fragment in the gap.
        t.insert_fragment(frag(45, 55, 200, 1, 0));
        assert_eq!(t.virtual_len(), 271);
        assert_eq!(t.fragment_count(), 3);
        assert_eq!(t.locate(&44).before, 31);
        assert_eq!(t.locate(&45).before, 31);
        assert_eq!(t.locate(&56).before, 231);
        let (f, off) = t.select(31).unwrap();
        assert_eq!((f.run, off), (1, 0));
        let (f, off) = t.select(230).unwrap();
        assert_eq!((f.run, off), (1, 199));
        let (f, off) = t.select(231).unwrap();
        assert_eq!((f.run, f.base, off), (0, 50, 0));
        // Arena slot reuse after the removal.
        assert_eq!(t.fragment_count(), 3);
        assert!(t.remove_containing(&42).is_none(), "gap contains nothing");
    }

    #[test]
    fn for_each_visits_in_label_order() {
        let t = build(&[
            frag(50, 59, 3, 2, 0),
            frag(10, 19, 3, 0, 0),
            frag(30, 39, 3, 1, 0),
        ]);
        let mut runs = Vec::new();
        t.for_each(&mut |f| runs.push(f.run));
        assert_eq!(runs, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_shape_across_builds() {
        let build_once = || {
            let mut t = RunTree::with_seed(7);
            for i in 0..200u64 {
                let lo = i * 10;
                t.insert_fragment(frag(lo, lo + 5, 1 + i % 7, i as u32, 0));
            }
            let mut order = Vec::new();
            t.for_each(&mut |f| order.push(f.run));
            (t.virtual_len(), order)
        };
        assert_eq!(build_once(), build_once());
    }

    #[test]
    fn many_single_item_fragments_behave_like_a_plain_tree() {
        let mut t = RunTree::new();
        for i in 0..1000u64 {
            t.insert_fragment(frag(i * 2, i * 2, 1, 0, i));
        }
        assert_eq!(t.virtual_len(), 1000);
        for i in 0..1000u64 {
            let l = t.locate(&(i * 2));
            assert_eq!(l.before, i);
            assert_eq!(l.hit.unwrap().base, i);
            let (f, off) = t.select(i).unwrap();
            assert_eq!((f.base, off), (i, 0));
        }
        // Odd probes fall in gaps.
        let l = t.locate(&501);
        assert!(l.hit.is_none());
        assert_eq!(l.before, 251);
        assert_eq!(l.pred.unwrap().lo, 500);
        assert_eq!(l.succ.unwrap().lo, 502);
    }
}
