//! In-order iteration over a treap.

use crate::tree::Node;

/// In-order (sorted) iterator over an [`crate::OsTree`].
///
/// Holds the tree's node arena and a stack of node indices; freed
/// arena slots are unreachable from the root and are never visited.
pub struct Iter<'a, T> {
    nodes: &'a [Node<T>],
    stack: Vec<u32>,
}

impl<'a, T> Iter<'a, T> {
    pub(crate) fn new(nodes: &'a [Node<T>], root: u32) -> Self {
        let mut it = Iter {
            nodes,
            stack: Vec::new(),
        };
        it.push_left(root);
        it
    }

    fn push_left(&mut self, mut link: u32) {
        while let Some(node) = self.nodes.get(link as usize) {
            self.stack.push(link);
            link = node.left;
        }
    }
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.nodes.get(self.stack.pop()? as usize)?;
        self.push_left(node.right);
        Some(&node.item)
    }
}
