//! In-order iteration over a treap.

use crate::tree::{Link, Node};

/// In-order (sorted) iterator over an [`crate::OsTree`].
pub struct Iter<'a, T> {
    stack: Vec<&'a Node<T>>,
}

impl<'a, T> Iter<'a, T> {
    pub(crate) fn new(root: &'a Link<T>) -> Self {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(root);
        it
    }

    fn push_left(&mut self, mut link: &'a Link<T>) {
        while let Some(node) = link.as_deref() {
            self.stack.push(node);
            link = &node.left;
        }
    }
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.stack.pop()?;
        self.push_left(&node.right);
        Some(&node.item)
    }
}
